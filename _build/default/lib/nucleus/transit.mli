(** The kernel transit segment (paper §5.1.6): a single fixed-size
    anonymous segment made of 64 KB slots, through which IPC message
    bodies travel.  Senders copy into a slot; receivers move the data
    out, which usually reassigns the page frames instead of copying. *)

type t

val slot_size : int
(** 64 KB, the IPC message size limit. *)

val create : Site.t -> ?slots:int -> unit -> t

val alloc : t -> int
(** Grab a free slot (blocks the fibre while all slots are busy);
    returns the slot index. *)

val release : t -> int -> unit
(** Return a slot; its leftover pages are discarded. *)

val cache : t -> Core.Pvm.cache
val slot_offset : t -> int -> int
val free_slots : t -> int
