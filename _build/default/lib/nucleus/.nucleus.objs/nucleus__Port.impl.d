lib/nucleus/port.ml: Hw Printf Queue
