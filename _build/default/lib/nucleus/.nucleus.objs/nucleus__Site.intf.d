lib/nucleus/site.mli: Core Hw Seg
