lib/nucleus/ipc.ml: Actor Bytes Core Hw Port Site Transit
