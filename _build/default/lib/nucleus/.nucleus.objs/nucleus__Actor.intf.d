lib/nucleus/actor.mli: Bytes Core Hw Seg Site
