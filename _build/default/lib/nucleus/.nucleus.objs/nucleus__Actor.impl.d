lib/nucleus/actor.ml: Core Hw List Seg Site
