lib/nucleus/remote_mapper.ml: Bytes Hw Port Seg Site
