lib/nucleus/transit.mli: Core Site
