lib/nucleus/transit.ml: Core Hw List Seg Site
