lib/nucleus/port.mli:
