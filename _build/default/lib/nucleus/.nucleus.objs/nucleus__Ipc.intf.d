lib/nucleus/ipc.mli: Actor Bytes Port Site Transit
