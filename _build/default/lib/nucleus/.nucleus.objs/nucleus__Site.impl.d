lib/nucleus/site.ml: Core Hw Seg
