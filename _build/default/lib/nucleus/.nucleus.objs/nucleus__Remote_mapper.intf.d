lib/nucleus/remote_mapper.mli: Hw Seg Site
