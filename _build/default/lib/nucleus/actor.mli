(** Actors and the Nucleus memory-management operations (paper §5.1.4).

    An actor is a protected address space hosting threads.  Its memory
    is a set of regions mapped to segments; the rgn* operations below
    are the Chorus Nucleus interface, each combining a few GMI
    operations through the segment manager:

    - {!rgn_allocate} — fresh anonymous memory (temporary cache);
    - {!rgn_map} — map an existing segment (by capability);
    - {!rgn_init} — new region initialised as a {e copy} of a segment;
    - {!rgn_map_from_actor} — share a region with another actor (used
      by fork for text);
    - {!rgn_init_from_actor} — copy a region of another actor (used by
      fork for data and stack, deferring via history objects). *)

type t = {
  a_id : int;
  a_site : Site.t;
  a_ctx : Core.Pvm.context;
  mutable a_mappings : mapping list;
  mutable a_alive : bool;
}

and mapping = {
  m_region : Core.Pvm.region;
  m_origin : origin;
}

and origin =
  | Temp of Core.Pvm.cache  (** temporary cache owned by this mapping *)
  | Bound of Seg.Capability.t  (** reference-counted segment binding *)
  | Shared_temp of Core.Pvm.cache
      (** temporary cache shared from another actor *)

val create : Site.t -> t
val destroy : t -> unit

val spawn_thread : t -> ?name:string -> (unit -> unit) -> unit
(** A thread of the actor: a fibre of the site's engine. *)

val rgn_allocate :
  t -> addr:int -> size:int -> prot:Hw.Prot.t -> mapping

val rgn_map :
  t ->
  addr:int ->
  size:int ->
  prot:Hw.Prot.t ->
  Seg.Capability.t ->
  offset:int ->
  mapping

val rgn_init :
  t ->
  addr:int ->
  size:int ->
  prot:Hw.Prot.t ->
  Seg.Capability.t ->
  offset:int ->
  mapping
(** Deferred (copy-on-write) initialisation from an existing segment;
    the copy is recorded in the history tree, no data moves. *)

val rgn_map_from_actor :
  t -> addr:int -> src:t -> src_addr:int -> size:int -> prot:Hw.Prot.t ->
  mapping

val rgn_init_from_actor :
  t -> addr:int -> src:t -> src_addr:int -> size:int -> prot:Hw.Prot.t ->
  mapping

val rgn_free : t -> mapping -> unit

val find_mapping : t -> addr:int -> mapping option

val read : t -> addr:int -> len:int -> Bytes.t
(** Simulated program read by one of the actor's threads. *)

val write : t -> addr:int -> Bytes.t -> unit
val touch : t -> addr:int -> access:Hw.Mmu.access -> unit
