(** Ports (paper §5.1.1): addresses to which messages can be sent,
    plus a queue holding messages received but not yet consumed.
    Receivers block on an empty queue. *)

type 'a t

val create : ?name:string -> unit -> 'a t
val name : 'a t -> string

val send : 'a t -> 'a -> unit
(** Enqueue a message and wake a waiting receiver. *)

val receive : 'a t -> 'a
(** Dequeue the oldest message, blocking the calling fibre while the
    queue is empty.  Must run inside {!Hw.Engine.run}. *)

val poll : 'a t -> 'a option
(** Non-blocking receive. *)

val pending : 'a t -> int
