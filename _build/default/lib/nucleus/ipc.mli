(** IPC message transport (paper §5.1.6).

    IPC is decoupled from memory management: it never creates,
    destroys or resizes regions.  A send copies the payload from the
    sender's address space into a transit-segment slot — as a
    [cache.copy] (per-virtual-page deferred when alignment allows) or
    a [bcopy] — and a receive moves it out with [cache.move], which
    reassigns whole page frames whenever possible.  Messages are
    limited to 64 KB; larger or sparse transfers belong to the memory
    management operations, not IPC. *)

type message

type endpoint = message Port.t

val make_endpoint : ?name:string -> unit -> endpoint

exception Message_too_big of int

val send : Actor.t -> Transit.t -> dst:endpoint -> addr:int -> len:int -> unit
(** Send [len] bytes at [addr] in the sender's address space.
    @raise Message_too_big beyond 64 KB. *)

val send_bytes : Site.t -> Transit.t -> dst:endpoint -> Bytes.t -> unit
(** Kernel-side send of an out-of-actor payload (system services). *)

val receive : Actor.t -> Transit.t -> endpoint -> addr:int -> int
(** Receive the oldest message into the receiver's address space at
    [addr]; blocks while the queue is empty; returns the length. *)

val receive_bytes : Site.t -> Transit.t -> endpoint -> Bytes.t
(** Kernel-side receive returning the payload. *)

val message_len : message -> int
