type t = {
  engine : Hw.Engine.t;
  pvm : Core.Pvm.t;
  segd : Seg.Segment_manager.t;
  default_store : Seg.Mem_mapper.t;
  default_port : int;
  mutable next_actor_id : int;
}

let create ?(page_size = 8192) ?(cost = Hw.Cost.chorus_sun360)
    ?(retention_capacity = 64) ?(swap_seek_time = 0)
    ?(swap_transfer_time_per_page = 0) ~frames ~engine () =
  let pvm = Core.Pvm.create ~page_size ~cost ~frames ~engine () in
  let segd =
    Seg.Segment_manager.create ~retention_capacity ~pvm ~default_mapper_port:0
      ()
  in
  let default_store =
    Seg.Mem_mapper.create ~seek_time:swap_seek_time
      ~transfer_time_per_page:swap_transfer_time_per_page ~page_size
      ~name:"default-mapper" ()
  in
  let default_port =
    Seg.Segment_manager.register_mapper segd
      (Seg.Mem_mapper.mapper default_store)
  in
  assert (default_port = 0);
  { engine; pvm; segd; default_store; default_port; next_actor_id = 1 }

let register_mapper t mapper = Seg.Segment_manager.register_mapper t.segd mapper
let page_size t = Core.Pvm.page_size t.pvm
