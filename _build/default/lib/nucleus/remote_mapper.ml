type request =
  | Read of { key : int64; offset : int; size : int }
  | Write of { key : int64; offset : int; data : Bytes.t }
  | Truncate of { key : int64; size : int }
  | Size of { key : int64 }
  | Create_temporary
  | Destroy of { key : int64 }

type response =
  | Data of Bytes.t
  | Done
  | Sized of int
  | Key of int64
  | Failed of exn

type rpc = { req : request; reply : response Port.t }
type server = { port : rpc Port.t; mutable served : int }

let requests_served server = server.served

let serve (site : Site.t) ?(latency = 0) (mapper : Seg.Mapper.t) =
  let port : rpc Port.t = Port.create ~name:("mapper:" ^ mapper.name) () in
  let server = { port; served = 0 } in
  Hw.Engine.spawn site.engine ~name:("mapper-server:" ^ mapper.name)
    ~daemon:true (fun () ->
      let rec loop () =
        let { req; reply } = Port.receive port in
        server.served <- server.served + 1;
        if latency > 0 then Hw.Engine.sleep latency;
        let answer =
          try
            match req with
            | Read { key; offset; size } ->
              Data (mapper.read ~key ~offset ~size)
            | Write { key; offset; data } ->
              mapper.write ~key ~offset data;
              Done
            | Truncate { key; size } ->
              mapper.truncate ~key ~size;
              Done
            | Size { key } -> Sized (mapper.segment_size ~key)
            | Create_temporary -> (
              match mapper.create_temporary with
              | Some alloc -> Key (alloc ())
              | None -> Failed (Invalid_argument "not a default mapper"))
            | Destroy { key } ->
              mapper.destroy_segment ~key;
              Done
          with e -> Failed e
        in
        Port.send reply answer;
        loop ()
      in
      loop ());
  server

let call server req =
  let reply = Port.create () in
  Port.send server.port { req; reply };
  match Port.receive reply with
  | Failed e -> raise e
  | other -> other

let client ~name server =
  let data = function Data d -> d | _ -> failwith "mapper rpc: bad reply" in
  let done_ = function Done -> () | _ -> failwith "mapper rpc: bad reply" in
  {
    Seg.Mapper.name;
    read =
      (fun ~key ~offset ~size ->
        data (call server (Read { key; offset; size })));
    write =
      (fun ~key ~offset d ->
        done_ (call server (Write { key; offset; data = d })));
    truncate = (fun ~key ~size -> done_ (call server (Truncate { key; size })));
    segment_size =
      (fun ~key ->
        match call server (Size { key }) with
        | Sized n -> n
        | _ -> failwith "mapper rpc: bad reply");
    create_temporary =
      Some
        (fun () ->
          match call server Create_temporary with
          | Key k -> k
          | _ -> failwith "mapper rpc: bad reply");
    destroy_segment = (fun ~key -> done_ (call server (Destroy { key })));
  }
