(** The minimal GMI implementation (paper §5.2).

    "A minimal implementation, suited for embedded real-time systems
    and small hardware configurations."  Everything is eager: region
    creation allocates and maps every frame up front (loading from the
    segment if the cache is backed), copies always move data, there is
    no demand paging, no deferred copy and no page-out — so after
    [region_create] returns, no access within the region can fault and
    MMU maps never change behind the application's back, the property
    real-time kernels need everywhere (the PVM only offers it through
    [lockInMemory]).

    Implements {!Core.Gmi.S}; the conformance suite in [test/gmi] runs
    the same semantic tests over this and the PVM, demonstrating the
    interface's genericity ("the MM implementation is the only
    difference between these Nucleus versions"). *)

include Core.Gmi.S

val frames_in_use : t -> int
