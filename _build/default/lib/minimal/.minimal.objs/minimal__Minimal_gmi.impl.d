lib/minimal/minimal_gmi.ml: Bytes Core Hashtbl Hw List
