lib/minimal/minimal_gmi.mli: Core
