lib/dsm/coherent.mli: Bytes Core Hw
