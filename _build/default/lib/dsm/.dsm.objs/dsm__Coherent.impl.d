lib/dsm/coherent.ml: Bytes Core Hashtbl Hw List Option Printf
