(** Distributed shared virtual memory over the GMI.

    The paper points out (§3.3.3, §5.1.2) that the cache-control
    operations — [flush], [invalidate], [setProtection], plus the
    [accessMode] argument of [pullIn] and the [getWriteAccess] upcall
    — are exactly what a segment mapper needs to implement Li & Hudak
    style coherent distributed virtual memory above different sites'
    local caches.  This module is that mapper: a single-writer /
    multiple-reader invalidation protocol at page granularity.

    Each participating site (its own PVM on the shared discrete-event
    engine) {!attach}es and receives a local cache bound to the shared
    segment.  Reads fault and pull pages with read access; the first
    write triggers the [getWriteAccess] upcall, which invalidates the
    other sites' copies before granting ownership. *)

type t

type site

type mode = Invalid | Reading | Writing

type stats = {
  mutable page_transfers : int; (* pages shipped to a site *)
  mutable invalidations : int; (* remote copies discarded *)
  mutable downgrades : int; (* writers demoted to readers *)
  mutable write_grants : int;
}

val create : ?latency:Hw.Sim_time.span -> size:int -> page_size:int -> unit -> t
(** A coherent segment of [size] bytes.  [latency] is charged per
    protocol message (page transfer, invalidation, grant). *)

val attach : t -> Core.Pvm.t -> site
(** Join a site to the segment; gives it a bound local cache. *)

val cache : site -> Core.Pvm.cache

val mode : site -> page:int -> mode
(** The site's current access mode for a page (for tests). *)

val stats : t -> stats

val master_read : t -> offset:int -> len:int -> Bytes.t
(** Coherent read of the home copy: collects the freshest data
    (syncing the current writer first). *)
