lib/net/network.mli: Hw Nucleus Seg
