lib/net/network.ml: Array Bytes Hashtbl Hw Nucleus Option Seg
