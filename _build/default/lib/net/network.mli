(** A network of Chorus sites (paper §5.1.1).

    "The physical support for a Chorus system is composed of a set of
    sites, interconnected by a communications network.  There is one
    Nucleus per site."  All sites share one discrete-event engine; the
    network charges a per-message latency plus per-page wire time and
    delivers asynchronously, so cross-site interactions interleave
    like real traffic.

    Two services are built on the wire:
    - {!Endpoint}: location-transparent IPC.  Sending to an endpoint
      uses the zero-copy transit-segment path when the receiver is on
      the sender's site, and a wire transfer otherwise — the sender
      cannot tell which.
    - {!remote_mapper}: make a mapper served on one site usable from
      another; a segment mapped on site B whose pager lives on site A
      pulls its pages across the network, which is how Chorus runs
      distributed file systems. *)

type t

val create :
  ?latency:Hw.Sim_time.span ->
  ?per_page:Hw.Sim_time.span ->
  engine:Hw.Engine.t ->
  unit ->
  t
(** [latency] is charged per message (default 1 ms), [per_page] per
    8 KB of payload (default 0.5 ms). *)

val add_site : t -> Nucleus.Site.t -> int
(** Attach a site; returns its station id. *)

val site : t -> int -> Nucleus.Site.t

val messages_sent : t -> int
val bytes_sent : t -> int

(** Location-transparent message endpoints. *)
module Endpoint : sig
  type net := t
  type t

  val create : net -> home:int -> ?name:string -> unit -> t
  (** An endpoint whose receive queue lives on site [home]. *)

  val send :
    net -> from_site:int -> Nucleus.Actor.t -> t -> addr:int -> len:int -> unit
  (** Send [len] bytes from the actor's address space.  Local
      destination: the transit-segment fast path.  Remote: the payload
      crosses the wire. *)

  val receive : net -> Nucleus.Actor.t -> t -> addr:int -> int
  (** Receive into the actor's space (the actor must live on the
      endpoint's home site); blocks while empty; returns the length. *)

  val pending : t -> int
end

val remote_mapper :
  t -> home:int -> Seg.Mapper.t -> name:string -> Seg.Mapper.t
(** Wrap a mapper served on site [home] for use from any other site:
    every request crosses the wire twice (request + reply) and pays
    per-page time for the data moved. *)
