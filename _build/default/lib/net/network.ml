type t = {
  engine : Hw.Engine.t;
  latency : Hw.Sim_time.span;
  per_page : Hw.Sim_time.span;
  mutable sites : Nucleus.Site.t array;
  transits : (int, Nucleus.Transit.t) Hashtbl.t; (* site id -> transit *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
}

let create ?(latency = Hw.Sim_time.ms 1) ?(per_page = Hw.Sim_time.us 500)
    ~engine () =
  {
    engine;
    latency;
    per_page;
    sites = [||];
    transits = Hashtbl.create 8;
    messages_sent = 0;
    bytes_sent = 0;
  }

let add_site t site =
  t.sites <- Array.append t.sites [| site |];
  Array.length t.sites - 1

let site t id = t.sites.(id)
let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent

(* Charge the calling fibre for putting [bytes] on the wire. *)
let wire_delay t ~bytes =
  let pages = (bytes + 8191) / 8192 in
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + bytes;
  Hw.Engine.sleep (t.latency + (pages * t.per_page))

let transit_of t site_id =
  match Hashtbl.find_opt t.transits site_id with
  | Some tr -> tr
  | None ->
    let tr = Nucleus.Transit.create t.sites.(site_id) () in
    Hashtbl.replace t.transits site_id tr;
    tr

module Endpoint = struct
  type net = t

  type arrival = Local | Wire of Bytes.t

  type t = {
    home : int;
    local : Nucleus.Ipc.endpoint; (* same-site fast path *)
    arrivals : arrival Nucleus.Port.t; (* merged notification queue *)
  }

  let create (_net : net) ~home ?name () =
    { home; local = Nucleus.Ipc.make_endpoint ?name ();
      arrivals = Nucleus.Port.create ?name () }

  let pending ep = Nucleus.Port.pending ep.arrivals

  let site_of_actor (net : net) (actor : Nucleus.Actor.t) =
    let rec find i =
      if i >= Array.length net.sites then
        invalid_arg "Network: actor's site not attached"
      else if net.sites.(i) == actor.Nucleus.Actor.a_site then i
      else find (i + 1)
    in
    find 0

  let send net ~from_site (actor : Nucleus.Actor.t) ep ~addr ~len =
    if len > Nucleus.Transit.slot_size then
      raise (Nucleus.Ipc.Message_too_big len);
    if from_site = ep.home then begin
      (* local: the §5.1.6 zero-copy path through the transit segment *)
      Nucleus.Ipc.send actor (transit_of net from_site) ~dst:ep.local ~addr
        ~len;
      Nucleus.Port.send ep.arrivals Local
    end
    else begin
      (* remote: the payload leaves the sender's address space and
         crosses the wire *)
      let payload = Nucleus.Actor.read actor ~addr ~len in
      wire_delay net ~bytes:len;
      Nucleus.Port.send ep.arrivals (Wire payload)
    end

  let receive net (actor : Nucleus.Actor.t) ep ~addr =
    let my_site = site_of_actor net actor in
    if my_site <> ep.home then
      invalid_arg "Network: receive must run on the endpoint's home site";
    match Nucleus.Port.receive ep.arrivals with
    | Local -> Nucleus.Ipc.receive actor (transit_of net my_site) ep.local ~addr
    | Wire payload ->
      Nucleus.Actor.write actor ~addr payload;
      Bytes.length payload
end

(* A mapper on another site: every request is a remote procedure call
   over the wire, with the data paying per-page time.  This is the
   paper's §5.1.2 picture — pullIn becomes an IPC read request to the
   mapper's port — stretched across the network. *)
let remote_mapper t ~home (mapper : Seg.Mapper.t) ~name =
  let server = Nucleus.Remote_mapper.serve t.sites.(home) mapper in
  let rpc_wrap ~bytes f =
    wire_delay t ~bytes:64 (* request *);
    let result = f () in
    wire_delay t ~bytes (* reply *);
    result
  in
  let inner = Nucleus.Remote_mapper.client ~name server in
  {
    Seg.Mapper.name;
    read =
      (fun ~key ~offset ~size ->
        rpc_wrap ~bytes:size (fun () ->
            inner.Seg.Mapper.read ~key ~offset ~size));
    write =
      (fun ~key ~offset data ->
        rpc_wrap ~bytes:(Bytes.length data) (fun () ->
            inner.Seg.Mapper.write ~key ~offset data));
    truncate =
      (fun ~key ~size ->
        rpc_wrap ~bytes:0 (fun () -> inner.Seg.Mapper.truncate ~key ~size));
    segment_size =
      (fun ~key ->
        rpc_wrap ~bytes:0 (fun () -> inner.Seg.Mapper.segment_size ~key));
    create_temporary =
      Option.map
        (fun alloc () -> rpc_wrap ~bytes:0 alloc)
        inner.Seg.Mapper.create_temporary;
    destroy_segment =
      (fun ~key ->
        rpc_wrap ~bytes:0 (fun () -> inner.Seg.Mapper.destroy_segment ~key));
  }
