lib/mix/process.mli: Bytes Image Nucleus
