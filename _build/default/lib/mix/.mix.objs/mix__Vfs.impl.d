lib/mix/vfs.ml: Bytes Core Hashtbl Nucleus Process Seg
