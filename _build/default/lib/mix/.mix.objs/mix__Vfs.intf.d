lib/mix/vfs.mli: Bytes Hw Nucleus Process
