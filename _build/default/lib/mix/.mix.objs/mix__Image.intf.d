lib/mix/image.mli: Bytes Nucleus Seg
