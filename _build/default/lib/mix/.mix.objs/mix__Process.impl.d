lib/mix/process.ml: Core Hw Image List Nucleus
