lib/mix/pipe.ml: Nucleus Process
