lib/mix/pipe.mli: Process
