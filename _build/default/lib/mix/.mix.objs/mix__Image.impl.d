lib/mix/image.ml: Bytes Hashtbl Nucleus Seg
