(** Program images: the "filesystem" the process manager loads from.

    An image is a pair of segments held by a file mapper — a text
    segment (shared, read-execute) and an initialised-data segment
    (copied on exec) — plus the sizes the process manager needs to lay
    out an address space.  Real binaries are obviously out of scope;
    image contents are synthetic patterns the tests check for. *)

type store
(** A library of images behind one file mapper. *)

type t = {
  name : string;
  text_cap : Seg.Capability.t;
  data_cap : Seg.Capability.t;
  text_size : int;
  data_size : int;
  bss_size : int;
}

val create_store : Nucleus.Site.t -> store

val add_image :
  store ->
  name:string ->
  text:Bytes.t ->
  data:Bytes.t ->
  ?bss_size:int ->
  unit ->
  t

val find : store -> string -> t
(** @raise Not_found for an unknown image name. *)

val mapper_reads : store -> int
(** File-mapper read count (drives the segment-caching ablation). *)
