(** The Chorus/MIX process manager (paper §5.1.5).

    A Unix process is a Chorus actor hosting a single thread.  [exec]
    maps the image's text segment (rgnMap, shared), initialises the
    data segment as a deferred copy (rgnInit), and allocates bss and
    stack (rgnAllocate).  [fork] shares the text with the child
    (rgnMapFromActor) and creates the child's data, bss and stack as
    deferred copies of the parent's (rgnInitFromActor) — the Unix
    workload history objects were designed for. *)

type manager
type t

type state = Running | Zombie of int (* exit status *) | Reaped

val text_base : int
val data_base : int
val bss_base : int
val stack_base : int
val stack_size : int

val create_manager : Nucleus.Site.t -> Image.store -> manager
val transit : manager -> Nucleus.Transit.t
val site : manager -> Nucleus.Site.t

val spawn_init : manager -> image:string -> t
(** The first process: a fresh actor exec'ing [image]. *)

val fork : manager -> t -> t
val exec : manager -> t -> image:string -> unit
val exit_ : manager -> t -> status:int -> unit

val wait : manager -> t -> (t * int) option
(** Reap one zombie child, if any ([None] when all children run). *)

val pid : t -> int
val parent_pid : t -> int
val state : t -> state
val actor : t -> Nucleus.Actor.t
val image_name : t -> string
val live_processes : manager -> int

val read : t -> addr:int -> len:int -> Bytes.t
val write : t -> addr:int -> Bytes.t -> unit

val sbrk : manager -> t -> int -> int
(** Grow the process's heap by the given number of bytes (rounded up
    to whole pages), Unix-style: allocates anonymous memory adjacent
    to the current break and returns the old break address. *)

val brk : t -> int
(** The current break (first unallocated heap address). *)

val data_ptr : t -> int
(** Convenience: first address of the data region. *)

val stack_ptr : t -> int
(** Convenience: first address of the stack region. *)
