type t = Nucleus.Ipc.endpoint

let create _m : t = Nucleus.Ipc.make_endpoint ~name:"pipe" ()

let write m proc pipe ~addr ~len =
  let transit = Process.transit m in
  let rec go sent =
    if sent < len then begin
      let chunk = min (len - sent) Nucleus.Transit.slot_size in
      Nucleus.Ipc.send (Process.actor proc) transit ~dst:pipe
        ~addr:(addr + sent) ~len:chunk;
      go (sent + chunk)
    end
  in
  go 0

let read m proc pipe ~addr =
  Nucleus.Ipc.receive (Process.actor proc) (Process.transit m) pipe ~addr

let pending (pipe : t) = Nucleus.Port.pending pipe
