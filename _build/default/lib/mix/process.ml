type state = Running | Zombie of int | Reaped

type t = {
  p_pid : int;
  p_parent : int;
  mutable p_actor : Nucleus.Actor.t;
  mutable p_state : state;
  mutable p_image : string;
  mutable p_children : t list;
  mutable p_brk : int; (* first unallocated heap address *)
}

type manager = {
  site : Nucleus.Site.t;
  images : Image.store;
  transit : Nucleus.Transit.t;
  mutable next_pid : int;
  mutable processes : t list;
}

(* A fixed Unix-like layout, in a 4 GB-ish virtual space.  The gaps
   between areas are large enough for any image the tests build. *)
let text_base = 0x0040_0000
let data_base = 0x1000_0000
let bss_base = 0x2000_0000
let stack_base = 0x7000_0000
let stack_size = 16 * 8192
let heap_base = 0x3800_0000

let create_manager site images =
  {
    site;
    images;
    transit = Nucleus.Transit.create site ();
    next_pid = 1;
    processes = [];
  }

let transit m = m.transit
let site m = m.site

let pid p = p.p_pid
let parent_pid p = p.p_parent
let state p = p.p_state
let actor p = p.p_actor
let image_name p = p.p_image

let live_processes m =
  List.length (List.filter (fun p -> p.p_state = Running) m.processes)

let check_running p =
  if p.p_state <> Running then invalid_arg "MIX: process not running"

(* Unmap everything the actor maps (exec and exit tear the address
   space down). *)
let clear_address_space (p : t) =
  List.iter
    (fun m -> Nucleus.Actor.rgn_free p.p_actor m)
    p.p_actor.Nucleus.Actor.a_mappings

(* The Unix exec (§5.1.5): rgnMap for text, rgnInit for data,
   rgnAllocate for bss and stack. *)
let exec m (p : t) ~image =
  check_running p;
  let img = Image.find m.images image in
  clear_address_space p;
  ignore
    (Nucleus.Actor.rgn_map p.p_actor ~addr:text_base ~size:img.Image.text_size
       ~prot:Hw.Prot.read_execute img.Image.text_cap ~offset:0);
  ignore
    (Nucleus.Actor.rgn_init p.p_actor ~addr:data_base ~size:img.Image.data_size
       ~prot:Hw.Prot.read_write img.Image.data_cap ~offset:0);
  if img.Image.bss_size > 0 then
    ignore
      (Nucleus.Actor.rgn_allocate p.p_actor ~addr:bss_base
         ~size:img.Image.bss_size ~prot:Hw.Prot.read_write);
  ignore
    (Nucleus.Actor.rgn_allocate p.p_actor ~addr:stack_base ~size:stack_size
       ~prot:Hw.Prot.read_write);
  p.p_image <- image;
  p.p_brk <- heap_base

let spawn_init m ~image =
  let p =
    {
      p_pid = m.next_pid;
      p_parent = 0;
      p_actor = Nucleus.Actor.create m.site;
      p_state = Running;
      p_image = "";
      p_children = [];
      p_brk = heap_base;
    }
  in
  m.next_pid <- m.next_pid + 1;
  m.processes <- p :: m.processes;
  exec m p ~image;
  p

(* The Unix fork (§5.1.5): share the text, defer-copy data, bss and
   stack. *)
let fork m (parent : t) =
  check_running parent;
  let actor = Nucleus.Actor.create m.site in
  let child =
    {
      p_pid = m.next_pid;
      p_parent = parent.p_pid;
      p_actor = actor;
      p_state = Running;
      p_image = parent.p_image;
      p_children = [];
      p_brk = parent.p_brk;
    }
  in
  m.next_pid <- m.next_pid + 1;
  m.processes <- child :: m.processes;
  parent.p_children <- child :: parent.p_children;
  let copy_area ~addr ~size ~prot ~share =
    if share then
      ignore
        (Nucleus.Actor.rgn_map_from_actor actor ~addr ~src:parent.p_actor
           ~src_addr:addr ~size ~prot)
    else
      ignore
        (Nucleus.Actor.rgn_init_from_actor actor ~addr ~src:parent.p_actor
           ~src_addr:addr ~size ~prot)
  in
  List.iter
    (fun (region : Core.Region.status) ->
      let addr = region.Core.Region.s_addr and size = region.s_size in
      let share = addr = text_base in
      copy_area ~addr ~size ~prot:region.s_prot ~share)
    (List.map Core.Region.status
       (Core.Context.region_list parent.p_actor.Nucleus.Actor.a_ctx));
  child

let exit_ m (p : t) ~status =
  check_running p;
  clear_address_space p;
  Nucleus.Actor.destroy p.p_actor;
  p.p_state <- Zombie status;
  ignore m

let wait _m (p : t) =
  match
    List.find_opt
      (fun c -> match c.p_state with Zombie _ -> true | _ -> false)
      p.p_children
  with
  | None -> None
  | Some child ->
    let status =
      match child.p_state with Zombie s -> s | _ -> assert false
    in
    child.p_state <- Reaped;
    p.p_children <- List.filter (fun c -> not (c == child)) p.p_children;
    Some (child, status)

let read p ~addr ~len =
  check_running p;
  Nucleus.Actor.read p.p_actor ~addr ~len

let write p ~addr bytes =
  check_running p;
  Nucleus.Actor.write p.p_actor ~addr bytes

(* Unix sbrk: allocate anonymous pages adjacent to the break.  Each
   call maps one fresh region (the GMI has no region resize; Chorus
   grows heaps the same way, with further rgnAllocates). *)
let sbrk m (p : t) increment =
  check_running p;
  if increment < 0 then invalid_arg "sbrk: negative increment";
  let old_brk = p.p_brk in
  if increment > 0 then begin
    let ps = Nucleus.Site.page_size m.site in
    let size = (increment + ps - 1) / ps * ps in
    ignore
      (Nucleus.Actor.rgn_allocate p.p_actor ~addr:p.p_brk ~size
         ~prot:Hw.Prot.read_write);
    p.p_brk <- p.p_brk + size
  end;
  old_brk

let brk (p : t) = p.p_brk

let data_ptr _ = data_base
let stack_ptr _ = stack_base
