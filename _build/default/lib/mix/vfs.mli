(** A small Unix-like file layer over segments — the unified-cache
    demonstration (paper §3.2).

    "In a Unix-like system with demand-paging, there are two potential
    conflicts between read/write and mapped access ... the two caches
    can become inconsistent; this is known as the dual caching
    problem.  The GMI solves these problems by offering a unified
    interface to segments: in addition to the mapped-memory access,
    the same cache can be accessed by explicit data transfer through
    copy operations."

    [read]/[write] here are explicit transfers through the file's
    local cache; [mmap] maps the {e same} cache into the process.
    Coherence between the two access paths is by construction — there
    is exactly one cache. *)

type t
type fd

val create : Process.manager -> t
(** A filesystem served by its own file mapper on the manager's
    site. *)

val create_file : t -> path:string -> ?initial:Bytes.t -> unit -> unit
val exists : t -> path:string -> bool

exception No_such_file of string

val openf : t -> path:string -> fd
(** Open a file, binding (or reusing) its local cache.
    @raise No_such_file for an unknown path. *)

val close : t -> fd -> unit

val read : t -> fd -> len:int -> Bytes.t
(** Read at the descriptor's position, advancing it.  Short reads at
    end of file; empty at or beyond it. *)

val write : t -> fd -> Bytes.t -> unit
(** Write at the descriptor's position, advancing it and growing the
    file if needed. *)

val lseek : t -> fd -> pos:int -> unit
val tell : t -> fd -> int
val size : t -> fd -> int

val fsync : t -> fd -> unit
(** Push modified cached data to the file mapper. *)

val mmap :
  t -> fd -> Process.t -> addr:int -> size:int -> prot:Hw.Prot.t ->
  Nucleus.Actor.mapping
(** Map the file's pages (from its offset 0) into the process at
    [addr]: the same local cache the explicit operations use. *)

val mapper_reads : t -> int
val mapper_writes : t -> int
