type t = {
  name : string;
  text_cap : Seg.Capability.t;
  data_cap : Seg.Capability.t;
  text_size : int;
  data_size : int;
  bss_size : int;
}

type store = {
  site : Nucleus.Site.t;
  files : Seg.Mem_mapper.t;
  port : int;
  images : (string, t) Hashtbl.t;
  page_size : int;
}

let create_store (site : Nucleus.Site.t) =
  let files = Seg.Mem_mapper.create ~name:"file-mapper" () in
  let port = Nucleus.Site.register_mapper site (Seg.Mem_mapper.mapper files) in
  { site; files; port; images = Hashtbl.create 16;
    page_size = Nucleus.Site.page_size site }

let round_up ps n = (n + ps - 1) / ps * ps

let pad store bytes =
  let size = max store.page_size (round_up store.page_size (Bytes.length bytes)) in
  let out = Bytes.make size '\000' in
  Bytes.blit bytes 0 out 0 (Bytes.length bytes);
  out

let add_image store ~name ~text ~data ?(bss_size = 0) () =
  let text = pad store text and data = pad store data in
  let text_key = Seg.Mem_mapper.create_segment store.files ~initial:text () in
  let data_key = Seg.Mem_mapper.create_segment store.files ~initial:data () in
  let image =
    {
      name;
      text_cap = Seg.Capability.make ~port:store.port ~key:text_key;
      data_cap = Seg.Capability.make ~port:store.port ~key:data_key;
      text_size = Bytes.length text;
      data_size = Bytes.length data;
      bss_size = round_up store.page_size bss_size;
    }
  in
  Hashtbl.replace store.images name image;
  image

let find store name =
  match Hashtbl.find_opt store.images name with
  | Some image -> image
  | None -> raise Not_found

let mapper_reads store = Seg.Mem_mapper.reads store.files
