(** Unix pipes on Chorus IPC (paper §5.1.6 workload).

    A pipe is a port; each write is one IPC message through the
    kernel's transit segment, so page-aligned pipe traffic moves by
    frame reassignment rather than copying.  Writes beyond the 64 KB
    message limit are split. *)

type t

val create : Process.manager -> t

val write : Process.manager -> Process.t -> t -> addr:int -> len:int -> unit
(** Send [len] bytes from the process's address space down the pipe. *)

val read : Process.manager -> Process.t -> t -> addr:int -> int
(** Receive one message into the process's address space; blocks on an
    empty pipe; returns its length. *)

val pending : t -> int
