lib/shadow/shadow_vm.ml: Bytes Hashtbl Hw List
