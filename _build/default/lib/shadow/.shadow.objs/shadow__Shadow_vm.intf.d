lib/shadow/shadow_vm.mli: Bytes Hw
