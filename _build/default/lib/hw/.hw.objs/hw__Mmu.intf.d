lib/hw/mmu.mli: Format Phys_mem Prot
