lib/hw/pqueue.ml: Array
