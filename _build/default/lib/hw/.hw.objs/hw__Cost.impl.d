lib/hw/cost.ml: Engine Sim_time
