lib/hw/pqueue.mli:
