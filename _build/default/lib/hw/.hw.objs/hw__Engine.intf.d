lib/hw/engine.mli: Sim_time
