lib/hw/cost.mli: Sim_time
