lib/hw/mmu.ml: Format Hashtbl Phys_mem Prot
