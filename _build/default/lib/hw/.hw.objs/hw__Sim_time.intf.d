lib/hw/sim_time.mli: Format
