lib/hw/phys_mem.mli: Bytes Format
