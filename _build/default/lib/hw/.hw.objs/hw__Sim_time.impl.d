lib/hw/sim_time.ml: Format
