lib/hw/engine.ml: Effect List Pqueue Sim_time
