lib/hw/prot.ml: Format Printf
