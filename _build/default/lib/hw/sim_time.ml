type t = int
type span = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let to_us_float t = float_of_int t /. 1e3
let to_ms_float t = float_of_int t /. 1e6

let pp ppf t =
  if t >= 1_000_000 then Format.fprintf ppf "%.2fms" (to_ms_float t)
  else if t >= 1_000 then Format.fprintf ppf "%.2fus" (to_us_float t)
  else Format.fprintf ppf "%dns" t

let pp_ms ppf t = Format.fprintf ppf "%.2f" (to_ms_float t)
