type t = { read : bool; write : bool; execute : bool }

let none = { read = false; write = false; execute = false }
let read_only = { read = true; write = false; execute = false }
let read_write = { read = true; write = true; execute = false }
let read_execute = { read = true; write = false; execute = true }
let all = { read = true; write = true; execute = true }

let allows t = function
  | `Read -> t.read
  | `Write -> t.write
  | `Execute -> t.execute

let remove_write t = { t with write = false }

let subsumes a b =
  (a.read || not b.read) && (a.write || not b.write)
  && (a.execute || not b.execute)

let intersect a b =
  { read = a.read && b.read;
    write = a.write && b.write;
    execute = a.execute && b.execute }

let equal a b = a = b

let to_string t =
  let c b ch = if b then ch else '-' in
  Printf.sprintf "%c%c%c" (c t.read 'r') (c t.write 'w') (c t.execute 'x')

let pp ppf t = Format.pp_print_string ppf (to_string t)
