(** Simulated time.

    The whole reproduction runs against a discrete-event clock rather
    than wall-clock time: the paper's measurements are reproduced by
    charging calibrated costs (see {!Cost}) for each hardware-level
    primitive the algorithms execute.  Time is counted in integer
    nanoseconds since the start of the simulation. *)

type t = int
(** An instant, in nanoseconds since simulation start. *)

type span = int
(** A duration in nanoseconds. *)

val zero : t

val ns : int -> span
(** [ns n] is a span of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val to_us_float : span -> float
val to_ms_float : span -> float

val pp : Format.formatter -> t -> unit
(** Prints a time in the most readable unit, e.g. ["1.40ms"]. *)

val pp_ms : Format.formatter -> t -> unit
(** Prints a time in milliseconds with two decimals, e.g. ["36.60"]. *)
