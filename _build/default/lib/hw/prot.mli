(** Hardware page protections.

    A protection is attached to each whole region (paper §3.2) and to
    each page-table entry of the simulated MMU. *)

type t = { read : bool; write : bool; execute : bool }

val none : t
val read_only : t
val read_write : t
val read_execute : t
val all : t

val allows : t -> [ `Read | `Write | `Execute ] -> bool

val remove_write : t -> t
(** Used when read-protecting pages for copy-on-write. *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff every access allowed by [b] is allowed by [a]. *)

val intersect : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
