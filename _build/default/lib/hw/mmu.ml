type t = { page_size : int }

type entry = { mutable frame : Phys_mem.frame; mutable prot : Prot.t }

type space = {
  mmu : t;
  table : (int, entry) Hashtbl.t;
  mutable alive : bool;
}

type fault = Unmapped | Protection
type access = [ `Read | `Write | `Execute ]

let create ~page_size =
  if page_size <= 0 then invalid_arg "Mmu.create: page_size <= 0";
  { page_size }

let page_size t = t.page_size
let create_space mmu = { mmu; table = Hashtbl.create 64; alive = true }

let destroy_space space =
  space.alive <- false;
  Hashtbl.reset space.table

let check_alive space =
  if not space.alive then invalid_arg "Mmu: space destroyed"

let vpn_of_addr t addr = addr / t.page_size
let page_base t ~vpn = vpn * t.page_size

let map space ~vpn frame prot =
  check_alive space;
  match Hashtbl.find_opt space.table vpn with
  | Some e ->
    e.frame <- frame;
    e.prot <- prot
  | None -> Hashtbl.replace space.table vpn { frame; prot }

let unmap space ~vpn =
  check_alive space;
  Hashtbl.remove space.table vpn

let protect space ~vpn prot =
  check_alive space;
  match Hashtbl.find_opt space.table vpn with
  | Some e -> e.prot <- prot
  | None -> invalid_arg "Mmu.protect: page not mapped"

let query space ~vpn =
  match Hashtbl.find_opt space.table vpn with
  | Some e -> Some (e.frame, e.prot)
  | None -> None

let translate space ~addr ~access =
  check_alive space;
  let vpn = vpn_of_addr space.mmu addr in
  match Hashtbl.find_opt space.table vpn with
  | None -> Error Unmapped
  | Some e -> if Prot.allows e.prot access then Ok e.frame else Error Protection

let invalidate_range space ~vpn ~count =
  check_alive space;
  let removed = ref 0 in
  for p = vpn to vpn + count - 1 do
    if Hashtbl.mem space.table p then begin
      Hashtbl.remove space.table p;
      incr removed
    end
  done;
  !removed

let mapped_pages space = Hashtbl.length space.table

let iter space f =
  Hashtbl.iter (fun vpn e -> f ~vpn e.frame e.prot) space.table

let pp_fault ppf = function
  | Unmapped -> Format.pp_print_string ppf "unmapped"
  | Protection -> Format.pp_print_string ppf "protection"
