(** Simulated memory-management unit.

    One {!space} per protected address space (paper "context").  The
    page table is sparse (a hash of virtual page number to entry), so
    the structure size depends on mapped pages only — matching the
    paper's requirement that management structures not scale with the
    size of the address space (§4.1).

    [translate] is the hardware walk: it either yields the frame or
    reports the fault a real MMU would raise; the memory manager above
    is responsible for resolving faults and retrying, exactly like a
    trap handler. *)

type t
(** The MMU: a factory for address spaces sharing one page size. *)

type space

type fault =
  | Unmapped  (** no PTE for the virtual page *)
  | Protection  (** PTE present but access not allowed *)

type access = [ `Read | `Write | `Execute ]

val create : page_size:int -> t
val page_size : t -> int

val create_space : t -> space
val destroy_space : space -> unit

val vpn_of_addr : t -> int -> int
(** Virtual page number containing a virtual address. *)

val page_base : t -> vpn:int -> int

val map : space -> vpn:int -> Phys_mem.frame -> Prot.t -> unit
(** Installs (or replaces) the PTE for [vpn]. *)

val unmap : space -> vpn:int -> unit
(** Removes the PTE for [vpn]; no-op if not mapped. *)

val protect : space -> vpn:int -> Prot.t -> unit
(** Changes the protection of an existing PTE.
    @raise Invalid_argument if [vpn] is not mapped. *)

val query : space -> vpn:int -> (Phys_mem.frame * Prot.t) option

val translate :
  space -> addr:int -> access:access -> (Phys_mem.frame, fault) result

val invalidate_range : space -> vpn:int -> count:int -> int
(** Removes all PTEs in [vpn, vpn+count); returns how many entries
    were actually removed.  Used at region destruction. *)

val mapped_pages : space -> int
(** Number of PTEs currently installed. *)

val iter : space -> (vpn:int -> Phys_mem.frame -> Prot.t -> unit) -> unit

val pp_fault : Format.formatter -> fault -> unit
