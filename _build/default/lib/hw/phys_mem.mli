(** Simulated physical memory: a pool of page frames.

    Each frame is backed by a real [Bytes.t] buffer, so every
    deferred-copy optimisation in the memory managers can be validated
    bit-for-bit against an eager-copy oracle.  The allocator is a free
    list, as in the PVM; frame descriptors are the "real page
    descriptors" of paper §4.1.1 minus the cache back-pointer (which
    belongs to the memory manager, see {!Core.Page}). *)

type t

type frame = private {
  index : int;  (** physical frame number *)
  bytes : Bytes.t;  (** the frame's contents; length = page size *)
}

val create : ?page_size:int -> frames:int -> unit -> t
(** [create ~frames ()] builds a pool of [frames] page frames.
    [page_size] defaults to 8192 bytes (the Sun-3/60 page size).
    @raise Invalid_argument if [frames <= 0] or [page_size <= 0]. *)

val page_size : t -> int
val total_frames : t -> int
val free_frames : t -> int
val used_frames : t -> int

exception Out_of_memory

val alloc : t -> frame
(** Takes a frame off the free list.  The frame contents are whatever
    the previous user left there (as on real hardware); callers that
    need zeroed memory must {!bzero} it.
    @raise Out_of_memory when the pool is exhausted. *)

val alloc_opt : t -> frame option

val free : t -> frame -> unit
(** Returns a frame to the free list.
    @raise Invalid_argument if the frame is already free. *)

val is_allocated : t -> frame -> bool

val bzero : frame -> unit
(** Fill a frame with zeroes (the paper's [bzero]). *)

val bcopy : src:frame -> dst:frame -> unit
(** Copy the full contents of [src] into [dst] (the paper's [bcopy]).
    @raise Invalid_argument on page-size mismatch. *)

val read : frame -> off:int -> len:int -> Bytes.t
val write : frame -> off:int -> Bytes.t -> unit

val fill : frame -> char -> unit
(** Fill a frame with a given byte; test/workload helper. *)

val pp_stats : Format.formatter -> t -> unit
