type frame = { index : int; bytes : Bytes.t }

type t = {
  page_size : int;
  frames : frame array;
  allocated : bool array;
  mutable free_list : int list;
  mutable used : int;
}

exception Out_of_memory

let create ?(page_size = 8192) ~frames () =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames <= 0";
  if page_size <= 0 then invalid_arg "Phys_mem.create: page_size <= 0";
  let make_frame index = { index; bytes = Bytes.create page_size } in
  {
    page_size;
    frames = Array.init frames make_frame;
    allocated = Array.make frames false;
    free_list = List.init frames (fun i -> i);
    used = 0;
  }

let page_size t = t.page_size
let total_frames t = Array.length t.frames
let used_frames t = t.used
let free_frames t = total_frames t - t.used

let alloc_opt t =
  match t.free_list with
  | [] -> None
  | i :: rest ->
    t.free_list <- rest;
    t.allocated.(i) <- true;
    t.used <- t.used + 1;
    Some t.frames.(i)

let alloc t =
  match alloc_opt t with Some f -> f | None -> raise Out_of_memory

let free t frame =
  if not t.allocated.(frame.index) then
    invalid_arg "Phys_mem.free: frame already free";
  t.allocated.(frame.index) <- false;
  t.free_list <- frame.index :: t.free_list;
  t.used <- t.used - 1

let is_allocated t frame = t.allocated.(frame.index)
let bzero frame = Bytes.fill frame.bytes 0 (Bytes.length frame.bytes) '\000'

let bcopy ~src ~dst =
  if Bytes.length src.bytes <> Bytes.length dst.bytes then
    invalid_arg "Phys_mem.bcopy: page size mismatch";
  Bytes.blit src.bytes 0 dst.bytes 0 (Bytes.length src.bytes)

let read frame ~off ~len = Bytes.sub frame.bytes off len
let write frame ~off data = Bytes.blit data 0 frame.bytes off (Bytes.length data)
let fill frame c = Bytes.fill frame.bytes 0 (Bytes.length frame.bytes) c

let pp_stats ppf t =
  Format.fprintf ppf "frames: %d total, %d used, %d free (%d B pages)"
    (total_frames t) (used_frames t) (free_frames t) t.page_size
