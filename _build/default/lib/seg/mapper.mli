(** The mapper interface (paper §5.1.1).

    A segment is implemented by an independent actor, its mapper,
    generally on secondary storage.  A mapper exports a standard
    read/write interface; {e default} mappers additionally export
    allocation of temporary segments (used for swap and for
    [rgnAllocate]'d anonymous memory).

    At this layer the mapper is a record of functions; the nucleus
    library wraps the calls in IPC messages to the mapper's port. *)

exception Bad_capability

type t = {
  name : string;
  read : key:int64 -> offset:int -> size:int -> Bytes.t;
      (** Read segment data.  Reads beyond the segment's current
          extent return zeroes (segments are sparse).  May block on
          simulated device time.
          @raise Bad_capability for an unknown key. *)
  write : key:int64 -> offset:int -> Bytes.t -> unit;
      (** Write segment data, growing the segment if needed. *)
  truncate : key:int64 -> size:int -> unit;
  segment_size : key:int64 -> int;
  create_temporary : (unit -> int64) option;
      (** Present on default mappers: allocate a temporary segment and
          return its key. *)
  destroy_segment : key:int64 -> unit;
}
