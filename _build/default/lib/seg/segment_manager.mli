(** The segment manager (paper §5.1.2, §5.1.3): the bridge between
    segment capabilities and GMI local caches.

    Given a segment capability, the segment manager finds the
    corresponding local cache or assigns one, translating GMI upcalls
    ([pullIn]/[pushOut]) into read/write requests on the segment's
    mapper.  Unreferenced caches are {e retained} as long as
    configured capacity allows (the "segment caching" strategy whose
    effect on repeated [exec] the paper highlights), and it services
    the [segmentCreate] upcall by allocating temporary swap segments
    with the default mapper. *)

type t

val create :
  ?retention_capacity:int ->
  pvm:Core.Pvm.t ->
  default_mapper_port:int ->
  unit ->
  t
(** [retention_capacity] bounds how many unreferenced local caches are
    kept for reuse (default 64; 0 disables segment caching).  Creating
    the manager installs the PVM's segmentCreate hook. *)

val register_mapper : t -> Mapper.t -> int
(** Make a mapper reachable; returns its port name.  The mapper
    registered as [default_mapper_port] must support temporary
    segments. *)

val mapper_of_port : t -> int -> Mapper.t

val bind : t -> Capability.t -> Core.Pvm.cache
(** Find or create the local cache for a segment.  Reference-counted:
    callers must [unbind] when done.
    @raise Mapper.Bad_capability if the port or key is unknown. *)

val unbind : t -> Capability.t -> unit
(** Drop one reference.  An unreferenced cache is retained for reuse
    (up to the retention capacity, evicting the least recently used
    retained cache, whose dirty pages are flushed to the segment). *)

val create_temporary : t -> Core.Pvm.cache
(** A fresh anonymous local cache ([rgnAllocate] backing store).  Swap
    is allocated from the default mapper on its first pushOut. *)

val destroy_temporary : t -> Core.Pvm.cache -> unit

val bound_count : t -> int
val retained_count : t -> int

type stats = {
  mutable binds : int;
  mutable bind_hits : int; (* live cache reused *)
  mutable retention_hits : int; (* retained (unreferenced) cache revived *)
  mutable retention_evictions : int;
  mutable swap_segments : int;
}

val stats : t -> stats
val set_retention_capacity : t -> int -> unit
