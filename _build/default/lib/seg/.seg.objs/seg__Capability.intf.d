lib/seg/capability.mli: Format Hashtbl
