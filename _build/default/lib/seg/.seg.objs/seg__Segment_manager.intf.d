lib/seg/segment_manager.mli: Capability Core Mapper
