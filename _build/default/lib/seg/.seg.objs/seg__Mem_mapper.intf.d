lib/seg/mem_mapper.mli: Bytes Hw Mapper
