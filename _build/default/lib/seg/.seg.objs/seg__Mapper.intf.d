lib/seg/mapper.mli: Bytes
