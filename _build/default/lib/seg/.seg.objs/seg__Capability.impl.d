lib/seg/capability.ml: Format Hashtbl Int64
