lib/seg/mem_mapper.ml: Bytes Capability Hashtbl Hw Mapper
