lib/seg/segment_manager.ml: Capability Core Hashtbl List Mapper Printf
