lib/seg/mapper.ml: Bytes
