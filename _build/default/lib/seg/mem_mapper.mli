(** A RAM-backed mapper: segments are growable byte stores.

    Used as the default mapper (it supports temporary segments) and as
    the store behind program images in the MIX layer.  An optional
    simulated device latency turns it into a "disk": each request
    charges a fixed seek plus a per-page transfer time, which the
    discrete-event engine accounts against the calling fibre — this is
    what makes pull-in/push-out overlap observable. *)

type t

val create :
  ?seek_time:Hw.Sim_time.span ->
  ?transfer_time_per_page:Hw.Sim_time.span ->
  ?page_size:int ->
  name:string ->
  unit ->
  t

val mapper : t -> Mapper.t

val create_segment : t -> ?initial:Bytes.t -> unit -> int64
(** Allocate a new (permanent) segment, optionally initialised, and
    return its key. *)

val segment_count : t -> int

val reads : t -> int
(** Number of read requests served (for the segment-caching
    ablation). *)

val writes : t -> int
