type t = { port : int; key : int64 }

let make ~port ~key = { port; key }

(* SplitMix64: deterministic, well-mixed key sequence. *)
let state = ref 0x9E3779B97F4A7C15L

let next_key () =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mint ~port = { port; key = next_key () }
let equal a b = a.port = b.port && Int64.equal a.key b.key
let compare a b =
  let c = compare a.port b.port in
  if c <> 0 then c else Int64.compare a.key b.key

let hash a = Hashtbl.hash (a.port, a.key)
let pp ppf a = Format.fprintf ppf "cap<port=%d,key=%Lx>" a.port a.key

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
