(** Sparse segment capabilities (paper §5.1.1).

    Segments are designated by capabilities similar to Amoeba's: the
    mapper's port name plus an opaque key that lets the mapper manage
    and protect segment access.  Keys are drawn from a keyed
    pseudo-random sequence so they are unguessable within a run yet
    deterministic across runs (the simulation never uses wall-clock
    entropy). *)

type t = private { port : int; key : int64 }

val make : port:int -> key:int64 -> t

val mint : port:int -> t
(** A fresh capability for [port] with an unguessable key. *)

val next_key : unit -> int64
(** A fresh opaque key (mappers mint these for their own segments). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
