exception Bad_capability

type t = {
  name : string;
  read : key:int64 -> offset:int -> size:int -> Bytes.t;
  write : key:int64 -> offset:int -> Bytes.t -> unit;
  truncate : key:int64 -> size:int -> unit;
  segment_size : key:int64 -> int;
  create_temporary : (unit -> int64) option;
  destroy_segment : key:int64 -> unit;
}
