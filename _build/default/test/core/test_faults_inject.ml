(* Failure injection: segment managers that raise or misbehave must
   not wedge the memory manager — in particular, synchronization page
   stubs must never be left behind (waiters would sleep forever). *)

let ps = 8192

exception Disk_error

let flaky_backing ~fail_reads ~fail_writes =
  let store = Hashtbl.create 8 in
  {
    Core.Gmi.b_name = "flaky";
    b_pull_in =
      (fun ~offset ~size ~prot:_ ~fill_up ->
        if !fail_reads then raise Disk_error
        else
          let data =
            match Hashtbl.find_opt store offset with
            | Some b -> Bytes.copy b
            | None -> Bytes.make size '\000'
          in
          fill_up ~offset data);
    b_get_write_access = (fun ~offset:_ ~size:_ -> ());
    b_push_out =
      (fun ~offset ~size ~copy_back ->
        if !fail_writes then raise Disk_error
        else Hashtbl.replace store offset (copy_back ~offset ~size));
  }

let with_pvm ?(frames = 8) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
      f pvm)

let test_pull_failure_recovers () =
  with_pvm (fun pvm ->
      let fail_reads = ref true and fail_writes = ref false in
      let backing = flaky_backing ~fail_reads ~fail_writes in
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      Alcotest.check_raises "pull failure propagates" Disk_error (fun () ->
          Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read);
      (* the device recovers; the same access must now succeed (no
         stale in-transit stub) *)
      fail_reads := false;
      Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read;
      Alcotest.(check int) "eventually two pull attempts" 2
        (Core.Pvm.stats pvm).Core.Types.n_pull_ins)

let test_pull_failure_wakes_waiters () =
  let engine = Hw.Engine.create () in
  let outcomes = ref [] in
  Hw.Engine.run engine (fun () ->
      let pvm = Core.Pvm.create ~frames:8 ~cost:Hw.Cost.free ~engine () in
      let fail_reads = ref true and fail_writes = ref false in
      let slow_flaky =
        let inner = flaky_backing ~fail_reads ~fail_writes in
        {
          inner with
          Core.Gmi.b_pull_in =
            (fun ~offset ~size ~prot ~fill_up ->
              Hw.Engine.sleep (Hw.Sim_time.ms 5);
              inner.Core.Gmi.b_pull_in ~offset ~size ~prot ~fill_up);
        }
      in
      let cache = Core.Cache.create pvm ~backing:slow_flaky () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_only
          cache ~offset:0
      in
      (* two fibres race to the same in-transit page; the pull fails *)
      for i = 1 to 2 do
        Hw.Engine.spawn engine (fun () ->
            (match Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read with
            | () -> outcomes := (i, "ok") :: !outcomes
            | exception Disk_error -> outcomes := (i, "error") :: !outcomes);
            (* after the first failure the device heals: retry *)
            fail_reads := false)
      done);
  (* neither fibre may hang: both resolve, the first with an error *)
  Alcotest.(check int) "both fibres completed" 2 (List.length !outcomes);
  Alcotest.(check bool) "first failed" true
    (List.mem (1, "error") !outcomes)

let test_push_failure_keeps_data () =
  with_pvm ~frames:8 (fun pvm ->
      let fail_reads = ref false and fail_writes = ref true in
      let backing = flaky_backing ~fail_reads ~fail_writes in
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.of_string "precious");
      Alcotest.check_raises "sync failure propagates" Disk_error (fun () ->
          Core.Cache.sync pvm cache ~offset:0 ~size:ps);
      (* data still cached and readable; a later sync succeeds *)
      Alcotest.(check string) "data survives failed sync" "precious"
        (Bytes.to_string (Core.Pvm.read pvm ctx ~addr:0 ~len:8));
      fail_writes := false;
      Core.Cache.sync pvm cache ~offset:0 ~size:ps;
      fail_reads := false;
      Core.Cache.invalidate pvm cache ~offset:0 ~size:ps;
      Alcotest.(check string) "second sync reached the segment" "precious"
        (Bytes.to_string (Core.Pvm.read pvm ctx ~addr:0 ~len:8)))

let test_lying_mapper_detected () =
  with_pvm (fun pvm ->
      (* a mapper that returns without providing data *)
      let backing =
        {
          Core.Gmi.b_name = "liar";
          b_pull_in = (fun ~offset:_ ~size:_ ~prot:_ ~fill_up:_ -> ());
          b_get_write_access = (fun ~offset:_ ~size:_ -> ());
          b_push_out = (fun ~offset:_ ~size:_ ~copy_back:_ -> ());
        }
      in
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_only
          cache ~offset:0
      in
      Alcotest.check_raises "contract violation reported"
        (Failure "GMI: segment 'liar' pullIn did not provide offset 0")
        (fun () -> Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read))

let tests =
  [
    Alcotest.test_case "pull failure recovers" `Quick
      test_pull_failure_recovers;
    Alcotest.test_case "pull failure wakes waiters" `Quick
      test_pull_failure_wakes_waiters;
    Alcotest.test_case "push failure keeps data" `Quick
      test_push_failure_keeps_data;
    Alcotest.test_case "lying mapper detected" `Quick
      test_lying_mapper_detected;
  ]
