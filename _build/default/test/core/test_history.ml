(* History-object scenarios, directly following Figure 3 of the paper
   (§4.2), plus the successive-copy complication of §4.2.3 and the
   source-deleted-first case of §4.2.2. *)

let ps = 8192

let with_pvm ?(frames = 512) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
      f pvm)

(* A mapped view of a cache so we can "run programs" against it. *)
let map_view pvm ctx ~addr cache ~pages =
  Core.Region.create pvm ctx ~addr ~size:(pages * ps)
    ~prot:Hw.Prot.read_write cache ~offset:0

let page_bytes c = Bytes.make ps c

let write_page pvm ctx ~base ~page c =
  Core.Pvm.write pvm ctx ~addr:(base + (page * ps)) (page_bytes c)

let read_byte pvm ctx ~base ~page =
  Bytes.get (Core.Pvm.read pvm ctx ~addr:(base + (page * ps)) ~len:1) 0

let check_invariant pvm =
  Alcotest.(check (list string)) "history invariant" []
    (Core.Pvm.check_invariant pvm)

let hist_copy pvm ~src ~dst ~pages =
  Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0 ~dst ~dst_off:0
    ~size:(pages * ps) ()

(* Figure 3.a: cpy1 is a copy-on-write of pages 1-3 of src.  Page 2 is
   updated in src, page 3 in cpy1.  A cache miss on page 1 in cpy1 is
   resolved by looking it up in src. *)
let test_fig3a () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let cpy1 = Core.Cache.create pvm () in
      let src_base = 0 and cpy_base = 1024 * ps in
      let _vs = map_view pvm ctx ~addr:src_base src ~pages:4 in
      let _vc = map_view pvm ctx ~addr:cpy_base cpy1 ~pages:4 in
      (* pages 1..3 of src hold '1' '2' '3' *)
      List.iter
        (fun (p, c) -> write_page pvm ctx ~base:src_base ~page:p c)
        [ (1, '1'); (2, '2'); (3, '3') ];
      hist_copy pvm ~src ~dst:cpy1 ~pages:4;
      check_invariant pvm;
      (* page 2 updated in src *)
      write_page pvm ctx ~base:src_base ~page:2 'X';
      (* page 3 updated in cpy1 *)
      write_page pvm ctx ~base:cpy_base ~page:3 'Y';
      (* cpy1 sees original page 2, its own page 3, and src's page 1 *)
      Alcotest.(check char) "cpy1 page 1 read through src" '1'
        (read_byte pvm ctx ~base:cpy_base ~page:1);
      Alcotest.(check char) "cpy1 page 2 is the original" '2'
        (read_byte pvm ctx ~base:cpy_base ~page:2);
      Alcotest.(check char) "cpy1 page 3 is its own" 'Y'
        (read_byte pvm ctx ~base:cpy_base ~page:3);
      (* src sees its own update *)
      Alcotest.(check char) "src page 2 updated" 'X'
        (read_byte pvm ctx ~base:src_base ~page:2);
      Alcotest.(check char) "src page 3 untouched" '3'
        (read_byte pvm ctx ~base:src_base ~page:3);
      check_invariant pvm)

(* Figure 3.b: src pages 1-3 copied to cpy1; src page 2 modified; then
   cpy1 copied to copyOfCpy1; page 3 of cpy1 modified -> copyOfCpy1
   must get a frame with the original value (taken logically from
   src). *)
let test_fig3b () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let cpy1 = Core.Cache.create pvm () in
      let cpy1_of = Core.Cache.create pvm () in
      let b0 = 0 and b1 = 1024 * ps and b2 = 2048 * ps in
      let _ = map_view pvm ctx ~addr:b0 src ~pages:4 in
      let _ = map_view pvm ctx ~addr:b1 cpy1 ~pages:4 in
      let _ = map_view pvm ctx ~addr:b2 cpy1_of ~pages:4 in
      List.iter
        (fun (p, c) -> write_page pvm ctx ~base:b0 ~page:p c)
        [ (1, '1'); (2, '2'); (3, '3') ];
      hist_copy pvm ~src ~dst:cpy1 ~pages:4;
      write_page pvm ctx ~base:b0 ~page:2 'M';
      hist_copy pvm ~src:cpy1 ~dst:cpy1_of ~pages:4;
      check_invariant pvm;
      (* page 3 of cpy1 modified: copyOfCpy1 must still see '3' *)
      write_page pvm ctx ~base:b1 ~page:3 'Z';
      Alcotest.(check char) "copyOfCpy1 page 3 keeps original" '3'
        (read_byte pvm ctx ~base:b2 ~page:3);
      Alcotest.(check char) "cpy1 page 3 diverged" 'Z'
        (read_byte pvm ctx ~base:b1 ~page:3);
      (* page 1 of both copies read from src *)
      Alcotest.(check char) "cpy1 page 1 from src" '1'
        (read_byte pvm ctx ~base:b1 ~page:1);
      Alcotest.(check char) "copyOfCpy1 page 1 from src" '1'
        (read_byte pvm ctx ~base:b2 ~page:1);
      (* page 2 of copyOfCpy1 read from cpy1 (the original of src) *)
      Alcotest.(check char) "copyOfCpy1 page 2 via cpy1" '2'
        (read_byte pvm ctx ~base:b2 ~page:2);
      check_invariant pvm)

(* Figure 3.c: src copied twice (cpy1, cpy2); a working history object
   w1 is inserted.  Pages modified afterwards: src page 3, cpy1 page
   3, cpy2 page 4. *)
let test_fig3c () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let cpy1 = Core.Cache.create pvm () in
      let cpy2 = Core.Cache.create pvm () in
      let b0 = 0 and b1 = 1024 * ps and b2 = 2048 * ps in
      let _ = map_view pvm ctx ~addr:b0 src ~pages:5 in
      let _ = map_view pvm ctx ~addr:b1 cpy1 ~pages:5 in
      let _ = map_view pvm ctx ~addr:b2 cpy2 ~pages:5 in
      List.iter
        (fun (p, c) -> write_page pvm ctx ~base:b0 ~page:p c)
        [ (1, '1'); (2, '2'); (3, '3'); (4, '4') ];
      hist_copy pvm ~src ~dst:cpy1 ~pages:5;
      hist_copy pvm ~src ~dst:cpy2 ~pages:5;
      Alcotest.(check int)
        "a working history object was created" 1
        (Core.Pvm.stats pvm).n_history_created;
      check_invariant pvm;
      write_page pvm ctx ~base:b0 ~page:3 'S';
      write_page pvm ctx ~base:b1 ~page:3 'C';
      write_page pvm ctx ~base:b2 ~page:4 'D';
      (* cpy1 and cpy2 keep the originals of everything they did not
         write *)
      Alcotest.(check char) "cpy1 page 1" '1' (read_byte pvm ctx ~base:b1 ~page:1);
      Alcotest.(check char) "cpy1 page 3 own" 'C'
        (read_byte pvm ctx ~base:b1 ~page:3);
      Alcotest.(check char) "cpy1 page 4 via src" '4'
        (read_byte pvm ctx ~base:b1 ~page:4);
      Alcotest.(check char) "cpy2 page 3 original via w1" '3'
        (read_byte pvm ctx ~base:b2 ~page:3);
      Alcotest.(check char) "cpy2 page 4 own" 'D'
        (read_byte pvm ctx ~base:b2 ~page:4);
      Alcotest.(check char) "src page 3 diverged" 'S'
        (read_byte pvm ctx ~base:b0 ~page:3);
      check_invariant pvm)

(* Figure 3.d: a third copy inserts a second working object. *)
let test_fig3d () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let mk () = Core.Cache.create pvm () in
      let cpy1 = mk () and cpy2 = mk () and cpy3 = mk () in
      let b0 = 0 in
      let bases = [ (cpy1, 1024 * ps); (cpy2, 2048 * ps); (cpy3, 3072 * ps) ] in
      let _ = map_view pvm ctx ~addr:b0 src ~pages:5 in
      List.iter (fun (c, b) -> ignore (map_view pvm ctx ~addr:b c ~pages:5)) bases;
      List.iter
        (fun (p, c) -> write_page pvm ctx ~base:b0 ~page:p c)
        [ (1, '1'); (2, '2'); (3, '3'); (4, '4') ];
      hist_copy pvm ~src ~dst:cpy1 ~pages:5;
      write_page pvm ctx ~base:b0 ~page:1 'a';
      hist_copy pvm ~src ~dst:cpy2 ~pages:5;
      write_page pvm ctx ~base:b0 ~page:2 'b';
      hist_copy pvm ~src ~dst:cpy3 ~pages:5;
      write_page pvm ctx ~base:b0 ~page:3 'c';
      Alcotest.(check int)
        "two working history objects" 2
        (Core.Pvm.stats pvm).n_history_created;
      check_invariant pvm;
      (* snapshots: cpy1 at t0, cpy2 after 'a', cpy3 after 'b' *)
      Alcotest.(check char) "cpy1 page1 snapshot" '1'
        (read_byte pvm ctx ~base:(List.assq cpy1 bases) ~page:1);
      Alcotest.(check char) "cpy2 page1 sees first update" 'a'
        (read_byte pvm ctx ~base:(List.assq cpy2 bases) ~page:1);
      Alcotest.(check char) "cpy2 page2 snapshot" '2'
        (read_byte pvm ctx ~base:(List.assq cpy2 bases) ~page:2);
      Alcotest.(check char) "cpy3 page2 sees second update" 'b'
        (read_byte pvm ctx ~base:(List.assq cpy3 bases) ~page:2);
      Alcotest.(check char) "cpy3 page3 snapshot" '3'
        (read_byte pvm ctx ~base:(List.assq cpy3 bases) ~page:3);
      Alcotest.(check char) "src sees all updates" 'c'
        (read_byte pvm ctx ~base:b0 ~page:3);
      check_invariant pvm)

(* §4.2.2: the copy deleted first (child exits) — simply discarded. *)
let test_copy_deleted_first () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let cpy = Core.Cache.create pvm () in
      let _ = map_view pvm ctx ~addr:0 src ~pages:4 in
      let v = map_view pvm ctx ~addr:(1024 * ps) cpy ~pages:4 in
      write_page pvm ctx ~base:0 ~page:0 'o';
      hist_copy pvm ~src ~dst:cpy ~pages:4;
      write_page pvm ctx ~base:(1024 * ps) ~page:0 'n';
      Core.Region.destroy pvm v;
      Core.Cache.destroy pvm cpy;
      check_invariant pvm;
      (* src intact, and a write no longer pays a history push *)
      Alcotest.(check char) "src keeps its value" 'o'
        (read_byte pvm ctx ~base:0 ~page:0);
      let before = (Core.Pvm.stats pvm).n_cow_copies in
      write_page pvm ctx ~base:0 ~page:0 'p';
      Alcotest.(check int)
        "no original pushed after copy deleted" before
        (Core.Pvm.stats pvm).n_cow_copies)

(* §4.2.2: the source deleted first (parent exits while child
   continues): remaining unmodified source data must be kept until the
   copy is deleted. *)
let test_source_deleted_first () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let cpy = Core.Cache.create pvm () in
      let vs = map_view pvm ctx ~addr:0 src ~pages:4 in
      let _vc = map_view pvm ctx ~addr:(1024 * ps) cpy ~pages:4 in
      write_page pvm ctx ~base:0 ~page:1 'k';
      hist_copy pvm ~src ~dst:cpy ~pages:4;
      Core.Region.destroy pvm vs;
      Core.Cache.destroy pvm src;
      (* child still reads the parent's data *)
      Alcotest.(check char) "child reads dead parent's data" 'k'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:1);
      check_invariant pvm)

(* Copy-on-reference: the copy materialises its pages on first read. *)
let test_copy_on_reference () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let cpy = Core.Cache.create pvm () in
      let _ = map_view pvm ctx ~addr:0 src ~pages:4 in
      let _ = map_view pvm ctx ~addr:(1024 * ps) cpy ~pages:4 in
      write_page pvm ctx ~base:0 ~page:0 'r';
      Core.Cache.copy pvm ~strategy:`History ~policy:`Copy_on_reference
        ~src ~src_off:0 ~dst:cpy ~dst_off:0 ~size:(4 * ps) ();
      let before = (Core.Pvm.stats pvm).n_cow_copies in
      Alcotest.(check char) "read sees source value" 'r'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:0);
      Alcotest.(check bool) "read materialised a private copy" true
        ((Core.Pvm.stats pvm).n_cow_copies > before);
      (* source divergence no longer affects the copy *)
      write_page pvm ctx ~base:0 ~page:0 's';
      Alcotest.(check char) "copy keeps its materialised value" 'r'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:0);
      check_invariant pvm)

(* Shifted copy (src_off <> dst_off) must still be correct: it takes
   the working-cache path. *)
let test_shifted_copy () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let dst = Core.Cache.create pvm () in
      let _ = map_view pvm ctx ~addr:0 src ~pages:8 in
      let _rd =
        Core.Region.create pvm ctx ~addr:(1024 * ps) ~size:(8 * ps)
          ~prot:Hw.Prot.read_write dst ~offset:0
      in
      write_page pvm ctx ~base:0 ~page:2 'w';
      (* copy src pages [0..4) to dst pages [4..8) *)
      Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0 ~dst
        ~dst_off:(4 * ps) ~size:(4 * ps) ();
      check_invariant pvm;
      Alcotest.(check char) "shifted read sees source page" 'w'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:6);
      (* divergence both sides *)
      write_page pvm ctx ~base:0 ~page:2 'W';
      Alcotest.(check char) "copy keeps snapshot after src write" 'w'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:6);
      write_page pvm ctx ~base:(1024 * ps) ~page:6 'V';
      Alcotest.(check char) "src unaffected by copy write" 'W'
        (read_byte pvm ctx ~base:0 ~page:2);
      check_invariant pvm)

(* Deep chains: fork-like chains of copies keep lookup correct. *)
let test_chain_of_copies () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let depth = 6 in
      let caches = Array.init depth (fun _ -> Core.Cache.create pvm ()) in
      Array.iteri
        (fun i c -> ignore (map_view pvm ctx ~addr:(i * 1024 * ps) c ~pages:2))
        caches;
      write_page pvm ctx ~base:0 ~page:0 '0';
      for i = 1 to depth - 1 do
        hist_copy pvm ~src:caches.(i - 1) ~dst:caches.(i) ~pages:2
      done;
      check_invariant pvm;
      (* the deepest copy still reads the root's page *)
      Alcotest.(check char) "deep chain lookup" '0'
        (read_byte pvm ctx ~base:((depth - 1) * 1024 * ps) ~page:0);
      (* each level diverges; snapshots remain intact *)
      for i = 0 to depth - 1 do
        write_page pvm ctx ~base:(i * 1024 * ps) ~page:0
          (Char.chr (Char.code 'A' + i))
      done;
      for i = 0 to depth - 1 do
        Alcotest.(check char)
          (Printf.sprintf "level %d keeps its own value" i)
          (Char.chr (Char.code 'A' + i))
          (read_byte pvm ctx ~base:(i * 1024 * ps) ~page:0)
      done;
      check_invariant pvm)

(* Partial-range copies at several offsets from one source: each frag
   gets its own snapshot; writes in uncopied ranges never push
   originals. *)
let test_partial_ranges () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let dst = Core.Cache.create pvm () in
      let _ = map_view pvm ctx ~addr:0 src ~pages:8 in
      let _ =
        Core.Region.create pvm ctx ~addr:(1024 * ps) ~size:(8 * ps)
          ~prot:Hw.Prot.read_write dst ~offset:0
      in
      for p = 0 to 7 do
        write_page pvm ctx ~base:0 ~page:p (Char.chr (Char.code 'a' + p))
      done;
      (* copy src pages [0..2) to dst [0..2) and src [4..6) to dst [4..6) *)
      Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0 ~dst ~dst_off:0
        ~size:(2 * ps) ();
      Core.Cache.copy pvm ~strategy:`History ~src ~src_off:(4 * ps) ~dst
        ~dst_off:(4 * ps) ~size:(2 * ps) ();
      check_invariant pvm;
      (* writes inside the copied ranges push originals; outside they
         do not *)
      let before = (Core.Pvm.stats pvm).Core.Types.n_cow_copies in
      write_page pvm ctx ~base:0 ~page:3 'X' (* uncopied *);
      Alcotest.(check int) "no original for uncopied page" before
        (Core.Pvm.stats pvm).n_cow_copies;
      write_page pvm ctx ~base:0 ~page:0 'Y' (* copied *);
      Alcotest.(check int) "original pushed for copied page" (before + 1)
        (Core.Pvm.stats pvm).n_cow_copies;
      (* the snapshots read right; dst pages outside the copies are
         its own zero-fill *)
      Alcotest.(check char) "dst page 0 snapshot" 'a'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:0);
      Alcotest.(check char) "dst page 4 snapshot" 'e'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:4);
      Alcotest.(check char) "dst page 3 is its own zero" '\000'
        (read_byte pvm ctx ~base:(1024 * ps) ~page:3);
      check_invariant pvm)

(* Four generations of successive copies with interleaved source
   writes: every generation keeps its own snapshot (fork of fork of
   fork with a mutating ancestor). *)
let test_generations () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let gens = 4 in
      let caches = Array.init (gens + 1) (fun _ -> Core.Cache.create pvm ()) in
      Array.iteri
        (fun i c -> ignore (map_view pvm ctx ~addr:(i * 1024 * ps) c ~pages:2))
        caches;
      write_page pvm ctx ~base:0 ~page:0 '0';
      for g = 1 to gens do
        hist_copy pvm ~src:caches.(0) ~dst:caches.(g) ~pages:2;
        (* the root mutates after each copy *)
        write_page pvm ctx ~base:0 ~page:0 (Char.chr (Char.code '0' + g))
      done;
      check_invariant pvm;
      (* generation g snapshot = root's value after g-1 writes *)
      for g = 1 to gens do
        Alcotest.(check char)
          (Printf.sprintf "generation %d snapshot" g)
          (Char.chr (Char.code '0' + g - 1))
          (read_byte pvm ctx ~base:(g * 1024 * ps) ~page:0)
      done;
      Alcotest.(check char) "root has the last write"
        (Char.chr (Char.code '0' + gens))
        (read_byte pvm ctx ~base:0 ~page:0);
      Alcotest.(check int)
        "working caches interposed for the repeated copies" (gens - 1)
        (Core.Pvm.stats pvm).Core.Types.n_history_created)

let tests =
  [
    Alcotest.test_case "partial ranges" `Quick test_partial_ranges;
    Alcotest.test_case "generations" `Quick test_generations;
    Alcotest.test_case "figure 3.a" `Quick test_fig3a;
    Alcotest.test_case "figure 3.b" `Quick test_fig3b;
    Alcotest.test_case "figure 3.c" `Quick test_fig3c;
    Alcotest.test_case "figure 3.d" `Quick test_fig3d;
    Alcotest.test_case "copy deleted first" `Quick test_copy_deleted_first;
    Alcotest.test_case "source deleted first" `Quick test_source_deleted_first;
    Alcotest.test_case "copy-on-reference" `Quick test_copy_on_reference;
    Alcotest.test_case "shifted copy" `Quick test_shifted_copy;
    Alcotest.test_case "chain of copies" `Quick test_chain_of_copies;
  ]
