(* Per-virtual-page copy-on-write (paper §4.3): stubs, reads through
   the source page, divergence on either side, stub chains, eviction
   retargeting. *)

let ps = 8192

let with_pvm ?(frames = 64) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
      f pvm)

let setup pvm ~pages =
  let ctx = Core.Context.create pvm in
  let src = Core.Cache.create pvm () in
  let dst = Core.Cache.create pvm () in
  let _ =
    Core.Region.create pvm ctx ~addr:0 ~size:(pages * ps)
      ~prot:Hw.Prot.read_write src ~offset:0
  in
  let _ =
    Core.Region.create pvm ctx ~addr:(1024 * ps) ~size:(pages * ps)
      ~prot:Hw.Prot.read_write dst ~offset:0
  in
  (ctx, src, dst)

let pp_copy pvm ~src ~dst ~pages =
  Core.Cache.copy pvm ~strategy:`Per_page ~src ~src_off:0 ~dst ~dst_off:0
    ~size:(pages * ps) ()

let wpage pvm ctx ~base ~page c =
  Core.Pvm.write pvm ctx ~addr:(base + (page * ps)) (Bytes.make ps c)

let rpage pvm ctx ~base ~page =
  Bytes.get (Core.Pvm.read pvm ctx ~addr:(base + (page * ps)) ~len:1) 0

let test_read_through_source () =
  with_pvm (fun pvm ->
      let ctx, src, dst = setup pvm ~pages:4 in
      wpage pvm ctx ~base:0 ~page:0 'a';
      let frames_before = Hw.Phys_mem.used_frames (Core.Pvm.memory pvm) in
      pp_copy pvm ~src ~dst ~pages:4;
      Alcotest.(check int)
        "no frames allocated by the deferred copy" frames_before
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm));
      Alcotest.(check char) "destination reads through the source page" 'a'
        (rpage pvm ctx ~base:(1024 * ps) ~page:0);
      (* still no copy performed: read was through a borrowed mapping *)
      Alcotest.(check int)
        "read did not copy" frames_before
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm)))

let test_write_in_destination () =
  with_pvm (fun pvm ->
      let ctx, src, dst = setup pvm ~pages:4 in
      wpage pvm ctx ~base:0 ~page:1 'b';
      pp_copy pvm ~src ~dst ~pages:4;
      wpage pvm ctx ~base:(1024 * ps) ~page:1 'c';
      Alcotest.(check char) "destination diverged" 'c'
        (rpage pvm ctx ~base:(1024 * ps) ~page:1);
      Alcotest.(check char) "source unchanged" 'b' (rpage pvm ctx ~base:0 ~page:1);
      Alcotest.(check bool) "a stub was resolved" true
        ((Core.Pvm.stats pvm).n_stub_resolves > 0))

let test_write_in_source () =
  with_pvm (fun pvm ->
      let ctx, src, dst = setup pvm ~pages:4 in
      wpage pvm ctx ~base:0 ~page:2 'd';
      pp_copy pvm ~src ~dst ~pages:4;
      (* writing the source materialises the destination's copy first *)
      wpage pvm ctx ~base:0 ~page:2 'e';
      Alcotest.(check char) "destination keeps the original" 'd'
        (rpage pvm ctx ~base:(1024 * ps) ~page:2);
      Alcotest.(check char) "source took the write" 'e'
        (rpage pvm ctx ~base:0 ~page:2))

let test_zero_source () =
  with_pvm (fun pvm ->
      let ctx, src, dst = setup pvm ~pages:4 in
      pp_copy pvm ~src ~dst ~pages:4;
      Alcotest.(check char) "copy of untouched memory is zero" '\000'
        (rpage pvm ctx ~base:(1024 * ps) ~page:3);
      (* and writable *)
      wpage pvm ctx ~base:(1024 * ps) ~page:3 'f';
      Alcotest.(check char) "writable after materialisation" 'f'
        (rpage pvm ctx ~base:(1024 * ps) ~page:3);
      Alcotest.(check char) "source still zero" '\000'
        (rpage pvm ctx ~base:0 ~page:3))

(* Copying from a cache that is itself a pending per-page destination
   shares the original source (stub chains). *)
let test_stub_chain () =
  with_pvm (fun pvm ->
      let ctx, src, dst = setup pvm ~pages:2 in
      let third = Core.Cache.create pvm () in
      let _ =
        Core.Region.create pvm ctx ~addr:(2048 * ps) ~size:(2 * ps)
          ~prot:Hw.Prot.read_write third ~offset:0
      in
      wpage pvm ctx ~base:0 ~page:0 'g';
      pp_copy pvm ~src ~dst ~pages:2;
      Core.Cache.copy pvm ~strategy:`Per_page ~src:dst ~src_off:0 ~dst:third
        ~dst_off:0 ~size:(2 * ps) ();
      Alcotest.(check char) "second-hop copy reads the original" 'g'
        (rpage pvm ctx ~base:(2048 * ps) ~page:0);
      (* divergence in the middle cache does not disturb the third *)
      wpage pvm ctx ~base:(1024 * ps) ~page:0 'h';
      Alcotest.(check char) "third keeps snapshot" 'g'
        (rpage pvm ctx ~base:(2048 * ps) ~page:0);
      Alcotest.(check char) "source untouched" 'g' (rpage pvm ctx ~base:0 ~page:0))

(* IPC-style move: resident pages change cache by frame reassignment,
   no copy. *)
let test_move_reassigns_frames () =
  with_pvm (fun pvm ->
      let ctx, src, dst = setup pvm ~pages:4 in
      wpage pvm ctx ~base:0 ~page:0 'm';
      wpage pvm ctx ~base:0 ~page:1 'n';
      let copies_before = (Core.Pvm.stats pvm).n_eager_pages in
      Core.Cache.move pvm ~src ~src_off:0 ~dst ~dst_off:0 ~size:(2 * ps) ();
      Alcotest.(check int)
        "no page was copied" copies_before
        (Core.Pvm.stats pvm).n_eager_pages;
      Alcotest.(check int) "two pages moved" 2 (Core.Pvm.stats pvm).n_moved_pages;
      Alcotest.(check char) "moved data readable in destination" 'm'
        (rpage pvm ctx ~base:(1024 * ps) ~page:0);
      Alcotest.(check char) "second page too" 'n'
        (rpage pvm ctx ~base:(1024 * ps) ~page:1))

(* Auto strategy routing: small aligned copies take the per-page path,
   large ones the history path, unaligned ones the eager path. *)
let test_auto_strategy () =
  with_pvm ~frames:600 (fun pvm ->
      let _ctx, src, dst = setup pvm ~pages:4 in
      Core.Cache.copy pvm ~src ~src_off:0 ~dst ~dst_off:0 ~size:(2 * ps) ();
      Alcotest.(check int)
        "small copy used stubs (no history)" 0
        (Core.Pvm.stats pvm).n_history_created;
      let big_src = Core.Cache.create pvm () in
      let big_dst = Core.Cache.create pvm () in
      Core.Cache.copy pvm ~src:big_src ~src_off:0 ~dst:big_dst ~dst_off:0
        ~size:(128 * ps) ();
      Alcotest.(check bool) "large copy used the history machinery" true
        ((Core.Pvm.stats pvm).n_history_created > 0
        ||
        (* first copy of a fresh source needs no working cache: check
           the tree exists by looking for a parent relationship *)
        Core.Pvm.check_invariant pvm = []);
      let before = (Core.Pvm.stats pvm).n_eager_pages in
      Core.Cache.copy pvm ~src ~src_off:3 ~dst ~dst_off:7 ~size:100 ();
      Alcotest.(check bool) "unaligned copy went eager" true
        ((Core.Pvm.stats pvm).n_eager_pages > before))

let tests =
  [
    Alcotest.test_case "read through source" `Quick test_read_through_source;
    Alcotest.test_case "write in destination" `Quick test_write_in_destination;
    Alcotest.test_case "write in source" `Quick test_write_in_source;
    Alcotest.test_case "zero source" `Quick test_zero_source;
    Alcotest.test_case "stub chain" `Quick test_stub_chain;
    Alcotest.test_case "move reassigns frames" `Quick
      test_move_reassigns_frames;
    Alcotest.test_case "auto strategy routing" `Quick test_auto_strategy;
  ]
