(* Edge cases and upcall-protocol details: getWriteAccess, region
   introspection, cache-level protection, policy variants, error
   paths, zombie collection of history chains. *)

let ps = 8192

let with_pvm ?(frames = 256) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
      f pvm)

(* The getWriteAccess upcall (Table 3): a write to data pulled
   read-only must request write access exactly once per page. *)
let test_get_write_access_upcall () =
  with_pvm (fun pvm ->
      let grants = ref [] in
      let pulls = ref [] in
      let backing =
        {
          Core.Gmi.b_name = "gwa";
          b_pull_in =
            (fun ~offset ~size ~prot ~fill_up ->
              pulls := (offset, Hw.Prot.allows prot `Write) :: !pulls;
              fill_up ~offset (Bytes.make size 'o'));
          b_get_write_access =
            (fun ~offset ~size:_ -> grants := offset :: !grants);
          b_push_out = (fun ~offset:_ ~size:_ ~copy_back:_ -> ());
        }
      in
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      (* read first: pulled with read access mode, no grant *)
      ignore (Core.Pvm.read pvm ctx ~addr:0 ~len:1);
      Alcotest.(check (list (pair int bool))) "read pulls read-only"
        [ (0, false) ] !pulls;
      Alcotest.(check (list int)) "no grant on read" [] !grants;
      (* the first write to read-pulled data requests access *)
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.of_string "w");
      Alcotest.(check (list int)) "grant requested for page 0" [ 0 ] !grants;
      (* further writes to the same page are free *)
      Core.Pvm.write pvm ctx ~addr:100 (Bytes.of_string "w");
      Alcotest.(check (list int)) "no second grant" [ 0 ] !grants;
      (* a write MISS pulls with write access mode directly (§3.3.3):
         no separate getWriteAccess *)
      Core.Pvm.write pvm ctx ~addr:ps (Bytes.of_string "w");
      Alcotest.(check (list (pair int bool))) "write miss pulls writable"
        [ (ps, true); (0, false) ]
        !pulls;
      Alcotest.(check (list int)) "no grant for write-mode pull" [ 0 ]
        !grants)

let test_region_list_and_status () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let r1 =
        Core.Region.create pvm ctx ~addr:(4 * ps) ~size:ps
          ~prot:Hw.Prot.read_only cache ~offset:(2 * ps)
      in
      let _r2 =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      let regions = Core.Context.region_list ctx in
      Alcotest.(check int) "two regions" 2 (List.length regions);
      (* sorted by start address *)
      let addrs =
        List.map (fun r -> (Core.Region.status r).Core.Region.s_addr) regions
      in
      Alcotest.(check (list int)) "sorted" [ 0; 4 * ps ] addrs;
      let st = Core.Region.status r1 in
      Alcotest.(check int) "status addr" (4 * ps) st.Core.Region.s_addr;
      Alcotest.(check int) "status size" ps st.s_size;
      Alcotest.(check int) "status offset" (2 * ps) st.s_offset;
      Alcotest.(check bool) "status prot" true
        (Hw.Prot.equal st.s_prot Hw.Prot.read_only);
      (* findRegion *)
      (match Core.Context.find_region ctx ~addr:(4 * ps + 100) with
      | Some r -> Alcotest.(check bool) "find_region finds r1" true (r == r1)
      | None -> Alcotest.fail "expected region");
      Alcotest.(check bool) "find_region misses gaps" true
        (Core.Context.find_region ctx ~addr:(2 * ps) = None))

let test_context_switch () =
  with_pvm (fun pvm ->
      let c1 = Core.Context.create pvm and c2 = Core.Context.create pvm in
      Core.Context.switch pvm c1;
      (match Core.Context.current pvm with
      | Some c -> Alcotest.(check bool) "current is c1" true (c == c1)
      | None -> Alcotest.fail "expected current context");
      Core.Context.switch pvm c2;
      Core.Context.destroy pvm c2;
      Alcotest.(check bool) "destroy clears current" true
        (Core.Context.current pvm = None);
      Core.Context.destroy pvm c1)

(* Table 4 setProtection: the segment manager caps access to cached
   data; writes then re-request access. *)
let test_cache_set_protection () =
  with_pvm (fun pvm ->
      let grants = ref 0 in
      let backing =
        {
          Core.Gmi.b_name = "cap";
          b_pull_in =
            (fun ~offset ~size ~prot:_ ~fill_up ->
              fill_up ~offset (Bytes.make size 'c'));
          b_get_write_access = (fun ~offset:_ ~size:_ -> incr grants);
          b_push_out = (fun ~offset:_ ~size:_ ~copy_back:_ -> ());
        }
      in
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.of_string "1");
      let grants_before = !grants in
      (* manager revokes write access on the cached page *)
      Core.Cache.set_protection pvm cache ~offset:0 ~size:ps
        Hw.Prot.read_only;
      ignore (Core.Pvm.read pvm ctx ~addr:0 ~len:1);
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.of_string "2");
      Alcotest.(check int) "write re-requested access" (grants_before + 1)
        !grants)

let test_errors () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      Alcotest.check_raises "unaligned region"
        (Invalid_argument "regionCreate: unaligned address, size or offset")
        (fun () ->
          ignore
            (Core.Region.create pvm ctx ~addr:100 ~size:ps
               ~prot:Hw.Prot.read_write cache ~offset:0));
      Alcotest.check_raises "zero-size region"
        (Invalid_argument "regionCreate: size <= 0") (fun () ->
          ignore
            (Core.Region.create pvm ctx ~addr:0 ~size:0
               ~prot:Hw.Prot.read_write cache ~offset:0));
      let r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      Alcotest.check_raises "destroy cache while mapped"
        (Invalid_argument "cacheDestroy: regions still map this cache")
        (fun () -> Core.Cache.destroy pvm cache);
      Core.Region.destroy pvm r;
      Alcotest.check_raises "double region destroy"
        (Invalid_argument "GMI: region destroyed") (fun () ->
          Core.Region.destroy pvm r);
      Core.Cache.destroy pvm cache;
      Alcotest.check_raises "op on dead cache"
        (Invalid_argument "GMI: cache destroyed") (fun () ->
          Core.Cache.sync pvm cache ~offset:0 ~size:ps);
      (* overlapping same-cache deferred copy *)
      let c2 = Core.Cache.create pvm () in
      Alcotest.check_raises "overlapping self-copy"
        (Invalid_argument "copy: overlapping ranges within one cache")
        (fun () ->
          Core.Cache.copy pvm ~src:c2 ~src_off:0 ~dst:c2 ~dst_off:ps
            ~size:(2 * ps) ()))

(* Zombie history chains: a destroyed interior cache is collected once
   its last reader detaches. *)
let test_zombie_collection () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let a = Core.Cache.create pvm () in
      let _ra =
        Core.Region.create pvm ctx ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write a ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.make ps 'a');
      let b = Core.Cache.create pvm () in
      Core.Cache.copy pvm ~strategy:`History ~src:a ~src_off:0 ~dst:b
        ~dst_off:0 ~size:(2 * ps) ();
      let c = Core.Cache.create pvm () in
      Core.Cache.copy pvm ~strategy:`History ~src:b ~src_off:0 ~dst:c
        ~dst_off:0 ~size:(2 * ps) ();
      (* b dies while c still reads through it: becomes hidden *)
      Core.Cache.destroy pvm b;
      Alcotest.(check (list string)) "invariants with zombie" []
        (Core.Pvm.check_invariant pvm);
      let rc =
        Core.Region.create pvm ctx ~addr:(16 * ps) ~size:(2 * ps)
          ~prot:Hw.Prot.read_write c ~offset:0
      in
      Alcotest.(check char) "c reads through dead b" 'a'
        (Bytes.get (Core.Pvm.read pvm ctx ~addr:(16 * ps) ~len:1) 0);
      (* c dies too: the whole hidden chain must be reclaimed *)
      Core.Region.destroy pvm rc;
      Core.Cache.destroy pvm c;
      Alcotest.(check (list string)) "invariants after collection" []
        (Core.Pvm.check_invariant pvm);
      (* only a's page frame remains *)
      Alcotest.(check int) "chain frames reclaimed" 1
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm)))

(* Copy-on-reference at the rgn level: offsets shifted, COR policy. *)
let test_cor_shifted () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_write src ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:(2 * ps) (Bytes.make ps 'q');
      let dst = Core.Cache.create pvm () in
      Core.Cache.copy pvm ~strategy:`History ~policy:`Copy_on_reference
        ~src ~src_off:(2 * ps) ~dst ~dst_off:0 ~size:ps ();
      let _rd =
        Core.Region.create pvm ctx ~addr:(32 * ps) ~size:ps
          ~prot:Hw.Prot.read_write dst ~offset:0
      in
      let before = (Core.Pvm.stats pvm).Core.Types.n_cow_copies in
      Alcotest.(check char) "shifted COR read" 'q'
        (Bytes.get (Core.Pvm.read pvm ctx ~addr:(32 * ps) ~len:1) 0);
      Alcotest.(check bool) "COR materialised on reference" true
        ((Core.Pvm.stats pvm).n_cow_copies > before))

(* moveBack keeps deferred relationships intact: children of the
   pushed range still read correct values. *)
let test_move_back_with_children () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let a = Core.Cache.create pvm () in
      let _ra =
        Core.Region.create pvm ctx ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write a ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.make ps 'm');
      let b = Core.Cache.create pvm () in
      Core.Cache.copy pvm ~strategy:`History ~src:a ~src_off:0 ~dst:b
        ~dst_off:0 ~size:(2 * ps) ();
      let data = Core.Cache.move_back pvm a ~offset:0 ~size:ps in
      Alcotest.(check char) "moveBack returns data" 'm' (Bytes.get data 0);
      (* the cow-protected page was NOT discarded (b depends on it) *)
      Alcotest.(check char) "child still reads the original" 'm'
        (Bytes.get (Core.Cache.copy_back pvm b ~offset:0 ~size:1) 0))

(* The PVM is page-size generic: run the basic flows at 4 KB. *)
let test_alternate_page_size () =
  let ps4 = 4096 in
  let engine = Hw.Engine.create () in
  Hw.Engine.run engine (fun () ->
      let pvm =
        Core.Pvm.create ~page_size:ps4 ~frames:32 ~cost:Hw.Cost.free ~engine ()
      in
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let dst = Core.Cache.create pvm () in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps4)
          ~prot:Hw.Prot.read_write src ~offset:0
      in
      let _r2 =
        Core.Region.create pvm ctx ~addr:(64 * ps4) ~size:(4 * ps4)
          ~prot:Hw.Prot.read_write dst ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:(ps4 - 3) (Bytes.of_string "straddle4k");
      Alcotest.(check string) "4K straddling write" "straddle4k"
        (Bytes.to_string (Core.Pvm.read pvm ctx ~addr:(ps4 - 3) ~len:10));
      Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0 ~dst ~dst_off:0
        ~size:(4 * ps4) ();
      Core.Pvm.write pvm ctx ~addr:ps4 (Bytes.of_string "DIVERGE");
      Alcotest.(check string) "4K COW snapshot" "straddle4"
        (Bytes.to_string (Core.Pvm.read pvm ctx ~addr:(64 * ps4 + ps4 - 3) ~len:9));
      Alcotest.(check (list string)) "invariants at 4K" []
        (Core.Pvm.check_invariant pvm))

(* The calibrated profile must satisfy the paper's §5.3.2
   decomposition identities. *)
let test_cost_decomposition () =
  let p = Hw.Cost.chorus_sun360 in
  let open Hw.Cost in
  (* demand zero-fill structure = 0.27 ms (fault + lookup + alloc +
     map + free at teardown) *)
  Alcotest.(check int) "zero-fill structure is 270us"
    (Hw.Sim_time.us 270)
    (p.t_fault_dispatch + p.t_map_lookup + p.t_frame_alloc + p.t_mmu_map
   + p.t_frame_free);
  Alcotest.(check int) "bcopy/bzero ratio ~1.6" 1
    (p.t_bcopy_page * 10 / p.t_bzero_page / 16);
  (* the Mach baseline must be strictly more expensive per primitive
     class the paper measures *)
  let m = Hw.Cost.mach_sun360 in
  Alcotest.(check bool) "mach region ops dearer" true
    (m.t_region_create > p.t_region_create);
  Alcotest.(check bool) "mach fault structure dearer" true
    (m.t_fault_dispatch + m.t_map_lookup + m.t_frame_alloc + m.t_mmu_map
    > p.t_fault_dispatch + p.t_map_lookup + p.t_frame_alloc + p.t_mmu_map);
  Alcotest.(check bool) "mach copy setup dearer (two shadows)" true
    (2 * m.t_tree_setup > p.t_tree_setup)

(* Inspect renders the live structures (Figure 2) and its accounting
   agrees with the frame pool. *)
let test_inspect () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let dst = Core.Cache.create pvm () in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write src ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.make ps 'i');
      Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0 ~dst ~dst_off:0
        ~size:(2 * ps) ();
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      let state = Format.asprintf "%a" Core.Inspect.pp_state pvm in
      Alcotest.(check bool) "cache lines present" true (contains state "cache");
      Alcotest.(check bool) "read-protection mark shown" true
        (String.length state > 0
        && String.contains state '*');
      let ctx_view = Format.asprintf "%a" Core.Inspect.pp_context ctx in
      Alcotest.(check bool) "context view mentions the region" true
        (String.length ctx_view > 0);
      Alcotest.(check int) "frame accounting agrees"
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm))
        (Core.Inspect.frames_held pvm))

let tests =
  [
    Alcotest.test_case "inspect" `Quick test_inspect;
    Alcotest.test_case "alternate page size (4K)" `Quick
      test_alternate_page_size;
    Alcotest.test_case "cost decomposition identities" `Quick
      test_cost_decomposition;
    Alcotest.test_case "getWriteAccess upcall" `Quick
      test_get_write_access_upcall;
    Alcotest.test_case "region list and status" `Quick
      test_region_list_and_status;
    Alcotest.test_case "context switch" `Quick test_context_switch;
    Alcotest.test_case "cache setProtection" `Quick test_cache_set_protection;
    Alcotest.test_case "error paths" `Quick test_errors;
    Alcotest.test_case "zombie collection" `Quick test_zombie_collection;
    Alcotest.test_case "copy-on-reference shifted" `Quick test_cor_shifted;
    Alcotest.test_case "moveBack with children" `Quick
      test_move_back_with_children;
  ]
