test/core/test_history.ml: Alcotest Array Bytes Char Core Hw List Printf
