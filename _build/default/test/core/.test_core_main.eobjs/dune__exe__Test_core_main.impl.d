test/core/test_core_main.ml: Alcotest Test_edge Test_faults_inject Test_gmi Test_history Test_pager Test_pervpage Test_props
