test/core/test_faults_inject.ml: Alcotest Bytes Core Hashtbl Hw List
