test/core/test_gmi.ml: Alcotest Bytes Core Hw
