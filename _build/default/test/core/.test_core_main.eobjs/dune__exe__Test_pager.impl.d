test/core/test_pager.ml: Alcotest Bytes Char Core Hashtbl Hw List Printf
