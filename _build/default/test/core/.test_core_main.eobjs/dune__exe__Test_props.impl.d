test/core/test_props.ml: Array Bytes Char Core Hashtbl Hw List Printf QCheck QCheck_alcotest String
