test/core/test_edge.ml: Alcotest Bytes Core Format Hw List String
