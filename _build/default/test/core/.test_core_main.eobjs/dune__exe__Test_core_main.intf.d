test/core/test_core_main.mli:
