test/core/test_pervpage.ml: Alcotest Bytes Core Hw
