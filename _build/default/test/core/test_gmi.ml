(* Unit tests of the basic GMI operations: contexts, regions, mapped
   access, explicit cache access, anonymous zero-fill semantics. *)

let ps = 8192

(* Run [f] against a fresh PVM inside the discrete-event engine. *)
let with_pvm ?(frames = 256) ?(cost = Hw.Cost.free) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let pvm = Core.Pvm.create ~frames ~cost ~engine () in
      f pvm)

let bytes_of_char c n = Bytes.make n c

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)

(* A memory-backed segment for tests: a growable byte store. *)
let mem_backing ?(name = "test-seg") ?(size = 64 * ps) () =
  let store = Bytes.make size '\000' in
  let backing =
    {
      Core.Gmi.b_name = name;
      b_pull_in =
        (fun ~offset ~size ~prot:_ ~fill_up ->
          fill_up ~offset (Bytes.sub store offset size));
      b_get_write_access = (fun ~offset:_ ~size:_ -> ());
      b_push_out =
        (fun ~offset ~size ~copy_back ->
          Bytes.blit (copy_back ~offset ~size) 0 store offset size);
    }
  in
  (backing, store)

let test_zero_fill () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let region =
        Core.Region.create pvm ctx ~addr:(16 * ps) ~size:(8 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      let data = Core.Pvm.read pvm ctx ~addr:(16 * ps) ~len:(2 * ps) in
      check_bytes "fresh anonymous memory is zero"
        (Bytes.make (2 * ps) '\000')
        data;
      Alcotest.(check int)
        "two zero fills" 2 (Core.Pvm.stats pvm).n_zero_fills;
      Core.Region.destroy pvm region;
      Core.Cache.destroy pvm cache)

let test_write_read_back () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let _region =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:100 (bytes_of_char 'x' 300);
      let back = Core.Pvm.read pvm ctx ~addr:100 ~len:300 in
      check_bytes "read back what was written" (bytes_of_char 'x' 300) back;
      (* Straddling a page boundary. *)
      Core.Pvm.write pvm ctx ~addr:(ps - 10) (bytes_of_char 'y' 20);
      let back = Core.Pvm.read pvm ctx ~addr:(ps - 10) ~len:20 in
      check_bytes "page-straddling write" (bytes_of_char 'y' 20) back)

let test_segfault () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      Alcotest.check_raises "no region -> segmentation fault"
        (Core.Gmi.Segmentation_fault 42) (fun () ->
          Core.Pvm.touch pvm ctx ~addr:42 ~access:`Read))

let test_protection_fault () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let region =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_only
          cache ~offset:0
      in
      Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read;
      Alcotest.check_raises "write to read-only region"
        (Core.Gmi.Protection_fault 8) (fun () ->
          Core.Pvm.touch pvm ctx ~addr:8 ~access:`Write);
      (* setProtection opens it up *)
      Core.Region.set_protection pvm region Hw.Prot.read_write;
      Core.Pvm.touch pvm ctx ~addr:8 ~access:`Write)

let test_region_overlap_rejected () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Alcotest.check_raises "overlap rejected"
        (Invalid_argument "regionCreate: regions overlap") (fun () ->
          ignore
            (Core.Region.create pvm ctx ~addr:ps ~size:(2 * ps)
               ~prot:Hw.Prot.read_write cache ~offset:0)))

let test_region_split () =
  with_pvm (fun pvm ->
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (bytes_of_char 'a' ps);
      Core.Pvm.write pvm ctx ~addr:(3 * ps) (bytes_of_char 'b' ps);
      let right = Core.Region.split pvm r ~offset:(2 * ps) in
      let s_left = Core.Region.status r and s_right = Core.Region.status right in
      Alcotest.(check int) "left size" (2 * ps) s_left.s_size;
      Alcotest.(check int) "right addr" (2 * ps) s_right.s_addr;
      Alcotest.(check int) "right offset" (2 * ps) s_right.s_offset;
      (* Different protections on the two halves (the §3.3.2 use case) *)
      Core.Region.set_protection pvm right Hw.Prot.read_only;
      Core.Pvm.touch pvm ctx ~addr:0 ~access:`Write;
      Alcotest.check_raises "right half read-only"
        (Core.Gmi.Protection_fault (3 * ps)) (fun () ->
          Core.Pvm.touch pvm ctx ~addr:(3 * ps) ~access:`Write);
      check_bytes "data still visible through right half"
        (bytes_of_char 'b' ps)
        (Core.Pvm.read pvm ctx ~addr:(3 * ps) ~len:ps))

let test_mapped_shared_between_contexts () =
  with_pvm (fun pvm ->
      let ctx1 = Core.Context.create pvm and ctx2 = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let _r1 =
        Core.Region.create pvm ctx1 ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      and _r2 =
        Core.Region.create pvm ctx2 ~addr:(8 * ps) ~size:(2 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Core.Pvm.write pvm ctx1 ~addr:16 (bytes_of_char 'z' 64);
      check_bytes "same segment visible from the second context"
        (bytes_of_char 'z' 64)
        (Core.Pvm.read pvm ctx2 ~addr:(8 * ps + 16) ~len:64))

let test_backed_pull_in () =
  with_pvm (fun pvm ->
      let backing, store = mem_backing () in
      Bytes.blit_string "hello from the segment" 0 store 0 22;
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      check_bytes "mapped file contents"
        (Bytes.of_string "hello from the segment")
        (Core.Pvm.read pvm ctx ~addr:0 ~len:22);
      Alcotest.(check int) "one pullIn" 1 (Core.Pvm.stats pvm).n_pull_ins)

let test_sync_writes_back () =
  with_pvm (fun pvm ->
      let backing, store = mem_backing () in
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (bytes_of_char 'm' ps);
      Alcotest.(check char) "store untouched before sync" '\000'
        (Bytes.get store 0);
      Core.Cache.sync pvm cache ~offset:0 ~size:(4 * ps);
      Alcotest.(check char) "store updated after sync" 'm' (Bytes.get store 0);
      Alcotest.(check int) "one pushOut" 1 (Core.Pvm.stats pvm).n_push_outs)

let test_explicit_copy_eager () =
  with_pvm (fun pvm ->
      let a = Core.Cache.create pvm () and b = Core.Cache.create pvm () in
      let ctx = Core.Context.create pvm in
      let _ra =
        Core.Region.create pvm ctx ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write a ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (bytes_of_char 'q' (2 * ps));
      (* unaligned copy -> eager *)
      Core.Cache.copy pvm ~src:a ~src_off:10 ~dst:b ~dst_off:3 ~size:100 ();
      check_bytes "eager copy moved the bytes" (bytes_of_char 'q' 100)
        (Core.Cache.copy_back pvm b ~offset:3 ~size:100))

let test_fill_up_copy_back () =
  with_pvm (fun pvm ->
      let cache = Core.Cache.create pvm () in
      Core.Cache.fill_up pvm cache ~offset:0 (bytes_of_char 'f' (2 * ps));
      check_bytes "fillUp data readable via copyBack"
        (bytes_of_char 'f' 100)
        (Core.Cache.copy_back pvm cache ~offset:ps ~size:100);
      let back = Core.Cache.move_back pvm cache ~offset:0 ~size:(2 * ps) in
      check_bytes "moveBack returns contents" (bytes_of_char 'f' (2 * ps)) back;
      Alcotest.(check int)
        "moveBack freed the pages" 0
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm)))

let test_invalidate_rereads_segment () =
  with_pvm (fun pvm ->
      let backing, store = mem_backing () in
      Bytes.fill store 0 ps 'A';
      let cache = Core.Cache.create pvm ~backing () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      check_bytes "initial read" (bytes_of_char 'A' 4)
        (Core.Pvm.read pvm ctx ~addr:0 ~len:4);
      (* segment changes behind our back; invalidate drops the cache *)
      Bytes.fill store 0 ps 'B';
      Core.Cache.invalidate pvm cache ~offset:0 ~size:ps;
      check_bytes "re-pulled after invalidate" (bytes_of_char 'B' 4)
        (Core.Pvm.read pvm ctx ~addr:0 ~len:4))

let test_lock_in_memory () =
  with_pvm ~frames:16 (fun pvm ->
      let cache = Core.Cache.create pvm () in
      let ctx = Core.Context.create pvm in
      let r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Core.Region.lock_in_memory pvm r;
      Alcotest.(check int)
        "locked region fully resident" 4
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm));
      Alcotest.(check bool) "status says locked" true
        (Core.Region.status r).s_locked;
      Core.Region.unlock pvm r;
      Alcotest.(check bool) "status says unlocked" false
        (Core.Region.status r).s_locked)

let test_context_destroy_cleans_up () =
  with_pvm (fun pvm ->
      let cache = Core.Cache.create pvm () in
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (bytes_of_char 'c' ps);
      Core.Context.destroy pvm ctx;
      (* the cache survives the context; its data is intact *)
      check_bytes "cache data survives context destruction"
        (bytes_of_char 'c' 4)
        (Core.Cache.copy_back pvm cache ~offset:0 ~size:4);
      Core.Cache.destroy pvm cache;
      Alcotest.(check int)
        "all frames returned" 0
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm)))

let tests =
  [
    Alcotest.test_case "zero-fill" `Quick test_zero_fill;
    Alcotest.test_case "write/read back" `Quick test_write_read_back;
    Alcotest.test_case "segmentation fault" `Quick test_segfault;
    Alcotest.test_case "protection fault" `Quick test_protection_fault;
    Alcotest.test_case "region overlap rejected" `Quick
      test_region_overlap_rejected;
    Alcotest.test_case "region split" `Quick test_region_split;
    Alcotest.test_case "shared mapping across contexts" `Quick
      test_mapped_shared_between_contexts;
    Alcotest.test_case "backed pull-in" `Quick test_backed_pull_in;
    Alcotest.test_case "sync writes back" `Quick test_sync_writes_back;
    Alcotest.test_case "eager copy" `Quick test_explicit_copy_eager;
    Alcotest.test_case "fillUp/copyBack/moveBack" `Quick
      test_fill_up_copy_back;
    Alcotest.test_case "invalidate re-reads segment" `Quick
      test_invalidate_rereads_segment;
    Alcotest.test_case "lockInMemory" `Quick test_lock_in_memory;
    Alcotest.test_case "context destroy cleans up" `Quick
      test_context_destroy_cleans_up;
  ]
