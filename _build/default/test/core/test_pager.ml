(* Page reclaim: eviction to segments, swap via the segmentCreate
   hook, wiring, out-of-memory behaviour, sync stubs under concurrent
   access. *)

let ps = 8192

let with_pvm ?(frames = 8) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
      f pvm)

(* A swap device shared by all anonymous caches of a test: the
   segmentCreate hook gives each cache its own store. *)
let install_swap pvm =
  let count = ref 0 in
  Core.Pvm.set_segment_create_hook pvm (fun _cache ->
      incr count;
      let store = Hashtbl.create 16 in
      Some
        {
          Core.Gmi.b_name = Printf.sprintf "swap-%d" !count;
          b_pull_in =
            (fun ~offset ~size ~prot:_ ~fill_up ->
              let data =
                match Hashtbl.find_opt store offset with
                | Some bytes -> Bytes.copy bytes
                | None -> Bytes.make size '\000'
              in
              fill_up ~offset data);
          b_get_write_access = (fun ~offset:_ ~size:_ -> ());
          b_push_out =
            (fun ~offset ~size ~copy_back ->
              Hashtbl.replace store offset (copy_back ~offset ~size));
        });
  count

let wpage pvm ctx ~page c =
  Core.Pvm.write pvm ctx ~addr:(page * ps) (Bytes.make ps c)

let rpage pvm ctx ~page =
  Bytes.get (Core.Pvm.read pvm ctx ~addr:(page * ps) ~len:1) 0

let test_swap_roundtrip () =
  with_pvm ~frames:4 (fun pvm ->
      let swaps = install_swap pvm in
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let _ =
        Core.Region.create pvm ctx ~addr:0 ~size:(16 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      (* dirty 8 pages through a 4-frame machine *)
      for page = 0 to 7 do
        wpage pvm ctx ~page (Char.chr (Char.code 'a' + page))
      done;
      Alcotest.(check bool) "evictions happened" true
        ((Core.Pvm.stats pvm).n_evictions > 0);
      Alcotest.(check int) "one swap segment created" 1 !swaps;
      (* everything reads back correctly, re-pulling from swap *)
      for page = 0 to 7 do
        Alcotest.(check char)
          (Printf.sprintf "page %d survives eviction" page)
          (Char.chr (Char.code 'a' + page))
          (rpage pvm ctx ~page)
      done)

let test_clean_pages_evict_free () =
  with_pvm ~frames:4 (fun pvm ->
      (* no swap hook: clean zero-filled pages can still be reclaimed *)
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let _ =
        Core.Region.create pvm ctx ~addr:0 ~size:(16 * ps)
          ~prot:Hw.Prot.read_only cache ~offset:0
      in
      for page = 0 to 7 do
        Core.Pvm.touch pvm ctx ~addr:(page * ps) ~access:`Read
      done;
      Alcotest.(check bool) "clean pages were reclaimed" true
        ((Core.Pvm.stats pvm).n_evictions >= 4);
      Alcotest.(check int)
        "no pushOut for clean zero pages" 0 (Core.Pvm.stats pvm).n_push_outs)

let test_out_of_memory () =
  with_pvm ~frames:4 (fun pvm ->
      (* dirty anonymous pages with no swap: must raise No_memory *)
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let _ =
        Core.Region.create pvm ctx ~addr:0 ~size:(16 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Alcotest.check_raises "memory exhausted" Core.Gmi.No_memory (fun () ->
          for page = 0 to 7 do
            wpage pvm ctx ~page 'x'
          done))

let test_wired_pages_not_evicted () =
  with_pvm ~frames:4 (fun pvm ->
      let _ = install_swap pvm in
      let ctx = Core.Context.create pvm in
      let locked_cache = Core.Cache.create pvm () in
      let cache = Core.Cache.create pvm () in
      let locked =
        Core.Region.create pvm ctx ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write locked_cache ~offset:0
      in
      let _ =
        Core.Region.create pvm ctx ~addr:(64 * ps) ~size:(16 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.make (2 * ps) 'L');
      Core.Region.lock_in_memory pvm locked;
      (* pressure from the other region *)
      for page = 0 to 5 do
        Core.Pvm.write pvm ctx ~addr:((64 + page) * ps) (Bytes.make ps 'p')
      done;
      (* locked pages never faulted out: accesses must not fault *)
      let faults_before = (Core.Pvm.stats pvm).n_faults in
      Alcotest.(check char) "locked data intact" 'L' (rpage pvm ctx ~page:0);
      Alcotest.(check int)
        "no fault on locked page" faults_before (Core.Pvm.stats pvm).n_faults)

let test_backed_eviction_writes_back () =
  with_pvm ~frames:4 (fun pvm ->
      let store = Bytes.make (16 * ps) '\000' in
      let backing =
        {
          Core.Gmi.b_name = "file";
          b_pull_in =
            (fun ~offset ~size ~prot:_ ~fill_up ->
              fill_up ~offset (Bytes.sub store offset size));
          b_get_write_access = (fun ~offset:_ ~size:_ -> ());
          b_push_out =
            (fun ~offset ~size ~copy_back ->
              Bytes.blit (copy_back ~offset ~size) 0 store offset size);
        }
      in
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm ~backing () in
      let _ =
        Core.Region.create pvm ctx ~addr:0 ~size:(16 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      for page = 0 to 7 do
        wpage pvm ctx ~page (Char.chr (Char.code 'A' + page))
      done;
      (* early pages were evicted and written to the segment *)
      Alcotest.(check char) "evicted page reached the store" 'A'
        (Bytes.get store 0);
      Alcotest.(check char) "and reads back through pullIn" 'A'
        (rpage pvm ctx ~page:0))

(* Two fibres touching the same in-transit page: the second must sleep
   on the synchronization stub until pullIn completes. *)
let test_sync_stub_blocks_concurrent_access () =
  let engine = Hw.Engine.create () in
  let log = ref [] in
  Hw.Engine.run engine (fun () ->
      let pvm = Core.Pvm.create ~frames:16 ~cost:Hw.Cost.free ~engine () in
      let slow_backing =
        {
          Core.Gmi.b_name = "slow-disk";
          b_pull_in =
            (fun ~offset ~size ~prot:_ ~fill_up ->
              Hw.Engine.sleep (Hw.Sim_time.ms 10);
              log := "pulled" :: !log;
              fill_up ~offset (Bytes.make size 'D'));
          b_get_write_access = (fun ~offset:_ ~size:_ -> ());
          b_push_out = (fun ~offset:_ ~size:_ ~copy_back:_ -> ());
        }
      in
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm ~backing:slow_backing () in
      let _ =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_only cache ~offset:0
      in
      Hw.Engine.spawn engine (fun () ->
          Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read;
          log := "first done" :: !log);
      Hw.Engine.spawn engine (fun () ->
          (* starts strictly after the first fibre began pulling *)
          Hw.Engine.sleep (Hw.Sim_time.ms 1);
          Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read;
          log := "second done" :: !log));
  (* exactly one pullIn despite two concurrent faulters *)
  let pulls = List.filter (( = ) "pulled") !log in
  Alcotest.(check int) "single pullIn" 1 (List.length pulls);
  Alcotest.(check (list string))
    "completion order"
    [ "second done"; "first done"; "pulled" ]
    !log

(* The page-out daemon keeps free frames above the low watermark, so
   a paced allocator never evicts synchronously. *)
let test_pageout_daemon () =
  let engine = Hw.Engine.create () in
  Hw.Engine.run engine (fun () ->
      let pvm = Core.Pvm.create ~frames:16 ~cost:Hw.Cost.free ~engine () in
      ignore (install_swap pvm);
      Core.Pvm.start_pageout_daemon pvm ~period:(Hw.Sim_time.ms 1)
        ~low_water:4 ~high_water:8;
      let ctx = Core.Context.create pvm in
      let cache = Core.Cache.create pvm () in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(64 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      (* dirty 48 pages through a 16-frame machine, paced so the
         daemon gets to run between bursts *)
      for page = 0 to 47 do
        Core.Pvm.write pvm ctx ~addr:(page * ps)
          (Bytes.make 8 (Char.chr (65 + (page mod 26))));
        if page mod 4 = 3 then Hw.Engine.sleep (Hw.Sim_time.ms 3)
      done;
      Alcotest.(check bool) "daemon kept memory free" true
        (Hw.Phys_mem.free_frames (Core.Pvm.memory pvm) >= 4);
      Alcotest.(check bool) "daemon evicted in the background" true
        ((Core.Pvm.stats pvm).n_evictions > 0);
      (* correctness preserved across daemon evictions *)
      for page = 0 to 47 do
        Alcotest.(check char)
          (Printf.sprintf "page %d intact" page)
          (Char.chr (65 + (page mod 26)))
          (rpage pvm ctx ~page)
      done)

let tests =
  [
    Alcotest.test_case "swap roundtrip" `Quick test_swap_roundtrip;
    Alcotest.test_case "pageout daemon" `Quick test_pageout_daemon;
    Alcotest.test_case "clean pages evict free" `Quick
      test_clean_pages_evict_free;
    Alcotest.test_case "out of memory" `Quick test_out_of_memory;
    Alcotest.test_case "wired pages not evicted" `Quick
      test_wired_pages_not_evicted;
    Alcotest.test_case "backed eviction writes back" `Quick
      test_backed_eviction_writes_back;
    Alcotest.test_case "sync stub blocks concurrent access" `Quick
      test_sync_stub_blocks_concurrent_access;
  ]
