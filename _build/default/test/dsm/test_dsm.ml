(* Distributed-shared-memory tests: the single-writer / multi-reader
   invalidation protocol built from the GMI cache controls. *)

let ps = 8192

(* Three sites, each its own PVM, sharing one engine and one coherent
   segment. *)
let with_sites ?(n = 3) ?(frames = 64) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let seg = Dsm.Coherent.create ~size:(8 * ps) ~page_size:ps () in
      let sites =
        Array.init n (fun _ ->
            let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
            let site = Dsm.Coherent.attach seg pvm in
            let ctx = Core.Context.create pvm in
            let _r =
              Core.Region.create pvm ctx ~addr:0 ~size:(8 * ps)
                ~prot:Hw.Prot.read_write (Dsm.Coherent.cache site) ~offset:0
            in
            (pvm, ctx, site))
      in
      f seg sites)

let wr (pvm, ctx, _) ~addr s = Core.Pvm.write pvm ctx ~addr (Bytes.of_string s)

let rd (pvm, ctx, _) ~addr ~len =
  Bytes.to_string (Core.Pvm.read pvm ctx ~addr ~len)

let test_read_sharing () =
  with_sites (fun seg sites ->
      wr sites.(0) ~addr:0 "written-at-site0";
      Alcotest.(check string) "site1 reads site0's write" "written-at-site0"
        (rd sites.(1) ~addr:0 ~len:16);
      Alcotest.(check string) "site2 too" "written-at-site0"
        (rd sites.(2) ~addr:0 ~len:16);
      (* all three can then share read mode *)
      let _, _, s0 = sites.(0) and _, _, s1 = sites.(1) and _, _, s2 = sites.(2) in
      Alcotest.(check bool) "site0 demoted to reader or invalid" true
        (Dsm.Coherent.mode s0 ~page:0 <> Dsm.Coherent.Writing);
      Alcotest.(check bool) "site1 reading" true
        (Dsm.Coherent.mode s1 ~page:0 = Dsm.Coherent.Reading);
      Alcotest.(check bool) "site2 reading" true
        (Dsm.Coherent.mode s2 ~page:0 = Dsm.Coherent.Reading);
      ignore seg)

let test_write_invalidates_readers () =
  with_sites (fun seg sites ->
      wr sites.(0) ~addr:0 "v1";
      ignore (rd sites.(1) ~addr:0 ~len:2);
      ignore (rd sites.(2) ~addr:0 ~len:2);
      let inv_before = (Dsm.Coherent.stats seg).invalidations in
      wr sites.(1) ~addr:0 "v2";
      Alcotest.(check bool) "invalidations happened" true
        ((Dsm.Coherent.stats seg).invalidations > inv_before);
      Alcotest.(check string) "site0 sees the new value" "v2"
        (rd sites.(0) ~addr:0 ~len:2);
      Alcotest.(check string) "site2 sees the new value" "v2"
        (rd sites.(2) ~addr:0 ~len:2))

let test_ping_pong () =
  with_sites ~n:2 (fun seg sites ->
      for i = 0 to 9 do
        let writer = sites.(i mod 2) and reader = sites.((i + 1) mod 2) in
        wr writer ~addr:0 (Printf.sprintf "round-%02d" i);
        Alcotest.(check string)
          (Printf.sprintf "round %d visible on the other site" i)
          (Printf.sprintf "round-%02d" i)
          (rd reader ~addr:0 ~len:8)
      done;
      Alcotest.(check bool) "ownership migrated repeatedly" true
        ((Dsm.Coherent.stats seg).write_grants >= 10))

let test_page_granularity () =
  with_sites ~n:2 (fun seg sites ->
      (* concurrent writers on different pages don't interfere *)
      wr sites.(0) ~addr:0 "page0-by-site0";
      wr sites.(1) ~addr:ps "page1-by-site1";
      Alcotest.(check string) "cross read page1" "page1-by-site1"
        (rd sites.(0) ~addr:ps ~len:14);
      Alcotest.(check string) "cross read page0" "page0-by-site0"
        (rd sites.(1) ~addr:0 ~len:14);
      let _, _, s0 = sites.(0) and _, _, s1 = sites.(1) in
      ignore seg;
      Alcotest.(check bool) "independent ownership" true
        (Dsm.Coherent.mode s0 ~page:1 <> Dsm.Coherent.Writing
        && Dsm.Coherent.mode s1 ~page:0 <> Dsm.Coherent.Writing))

let test_eviction_keeps_coherence () =
  with_sites ~n:2 ~frames:4 (fun _seg sites ->
      (* working set larger than one site's memory *)
      for page = 0 to 7 do
        wr sites.(0) ~addr:(page * ps) (Printf.sprintf "page-%d" page)
      done;
      for page = 7 downto 0 do
        Alcotest.(check string)
          (Printf.sprintf "page %d correct at site1" page)
          (Printf.sprintf "page-%d" page)
          (rd sites.(1) ~addr:(page * ps) ~len:6)
      done)

(* Sequentially-consistent oracle: random single-site operations in
   program order must behave like one flat byte array. *)
let prop_oracle =
  let n_sites = 3 and n_pages = 4 in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (triple (int_bound (n_sites - 1)) (int_bound (n_pages - 1))
           (map Char.chr (int_range 65 90))))
  in
  let print ops =
    String.concat ";"
      (List.map (fun (s, p, c) -> Printf.sprintf "(%d,%d,%c)" s p c) ops)
  in
  QCheck.Test.make ~count:100 ~name:"DSM matches sequential oracle"
    (QCheck.make ~print gen) (fun ops ->
      with_sites ~n:n_sites ~frames:32 (fun _seg sites ->
          let model = Bytes.make (n_pages * ps) '\000' in
          List.iteri
            (fun i (s, p, c) ->
              let addr = (p * ps) + (i mod 64) in
              if i mod 3 = 2 then begin
                (* read check *)
                let expected = Bytes.sub_string model addr 1 in
                let got = rd sites.(s) ~addr ~len:1 in
                if got <> expected then
                  QCheck.Test.fail_reportf
                    "read %d at site %d: got %S want %S in [%s]" i s got
                    expected (print ops)
              end
              else begin
                Bytes.set model addr c;
                wr sites.(s) ~addr (String.make 1 c)
              end)
            ops;
          (* final: everything visible everywhere *)
          Array.iteri
            (fun si site ->
              let view = rd site ~addr:0 ~len:(n_pages * ps) in
              if view <> Bytes.to_string model then
                QCheck.Test.fail_reportf "site %d diverged in [%s]" si
                  (print ops))
            sites;
          true))

let () =
  Alcotest.run "dsm"
    [
      ( "dsm",
        [
          Alcotest.test_case "read sharing" `Quick test_read_sharing;
          Alcotest.test_case "write invalidates readers" `Quick
            test_write_invalidates_readers;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "page granularity" `Quick test_page_granularity;
          Alcotest.test_case "eviction keeps coherence" `Quick
            test_eviction_keeps_coherence;
          QCheck_alcotest.to_alcotest prop_oracle;
        ] );
    ]
