(* Multi-site tests: location-transparent IPC and remote mappers
   across the simulated network. *)

let ps = 8192

let with_net ?(sites = 2) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let net = Net.Network.create ~engine () in
      let ids =
        List.init sites (fun _ ->
            let site =
              Nucleus.Site.create ~frames:128 ~cost:Hw.Cost.free ~engine ()
            in
            Net.Network.add_site net site)
      in
      f net (Array.of_list ids))

let make_actor net id =
  let site = Net.Network.site net id in
  let actor = Nucleus.Actor.create site in
  let _ =
    Nucleus.Actor.rgn_allocate actor ~addr:0 ~size:(16 * ps)
      ~prot:Hw.Prot.read_write
  in
  actor

let test_local_send_uses_fast_path () =
  with_net (fun net ids ->
      let a = make_actor net ids.(0) and b = make_actor net ids.(0) in
      let ep = Net.Network.Endpoint.create net ~home:ids.(0) () in
      Nucleus.Actor.write a ~addr:0 (Bytes.make ps 'L');
      let wire_before = Net.Network.messages_sent net in
      Net.Network.Endpoint.send net ~from_site:ids.(0) a ep ~addr:0 ~len:ps;
      let len = Net.Network.Endpoint.receive net b ep ~addr:0 in
      Alcotest.(check int) "length" ps len;
      Alcotest.(check char) "payload" 'L'
        (Bytes.get (Nucleus.Actor.read b ~addr:0 ~len:1) 0);
      Alcotest.(check int) "no wire traffic for local send" wire_before
        (Net.Network.messages_sent net))

let test_remote_send_crosses_wire () =
  with_net (fun net ids ->
      let a = make_actor net ids.(0) and b = make_actor net ids.(1) in
      let ep = Net.Network.Endpoint.create net ~home:ids.(1) () in
      Nucleus.Actor.write a ~addr:0 (Bytes.of_string "over the wire");
      let engine = (Net.Network.site net ids.(0)).Nucleus.Site.engine in
      let t0 = Hw.Engine.now engine in
      Net.Network.Endpoint.send net ~from_site:ids.(0) a ep ~addr:0 ~len:13;
      Alcotest.(check bool) "wire latency charged" true
        (Hw.Engine.now engine - t0 >= Hw.Sim_time.ms 1);
      let len = Net.Network.Endpoint.receive net b ep ~addr:100 in
      Alcotest.(check int) "length" 13 len;
      Alcotest.(check string) "payload" "over the wire"
        (Bytes.to_string (Nucleus.Actor.read b ~addr:100 ~len:13));
      Alcotest.(check int) "one wire message" 1
        (Net.Network.messages_sent net);
      Alcotest.(check int) "bytes counted" 13 (Net.Network.bytes_sent net))

let test_receive_wrong_site_rejected () =
  with_net (fun net ids ->
      let a = make_actor net ids.(0) in
      let ep = Net.Network.Endpoint.create net ~home:ids.(1) () in
      Alcotest.check_raises "receive must run at home"
        (Invalid_argument "Network: receive must run on the endpoint's home site")
        (fun () -> ignore (Net.Network.Endpoint.receive net a ep ~addr:0)))

let test_cross_site_producer_consumer () =
  let engine = Hw.Engine.create () in
  let received = ref [] in
  Hw.Engine.run engine (fun () ->
      let net = Net.Network.create ~engine () in
      let s0 =
        Net.Network.add_site net
          (Nucleus.Site.create ~frames:128 ~cost:Hw.Cost.free ~engine ())
      in
      let s1 =
        Net.Network.add_site net
          (Nucleus.Site.create ~frames:128 ~cost:Hw.Cost.free ~engine ())
      in
      let producer = make_actor net s0 and consumer = make_actor net s1 in
      let ep = Net.Network.Endpoint.create net ~home:s1 () in
      Nucleus.Actor.spawn_thread producer (fun () ->
          for i = 0 to 4 do
            Nucleus.Actor.write producer ~addr:0
              (Bytes.make 64 (Char.chr (97 + i)));
            Net.Network.Endpoint.send net ~from_site:s0 producer ep ~addr:0
              ~len:64
          done);
      Nucleus.Actor.spawn_thread consumer (fun () ->
          for _ = 0 to 4 do
            let len = Net.Network.Endpoint.receive net consumer ep ~addr:0 in
            received :=
              Bytes.get (Nucleus.Actor.read consumer ~addr:0 ~len) 0
              :: !received
          done));
  Alcotest.(check (list char)) "in-order delivery across sites"
    [ 'e'; 'd'; 'c'; 'b'; 'a' ]
    !received

(* A segment whose mapper lives on site 0, mapped and used on site 1:
   pullIn crosses the network (distributed file system shape). *)
let test_remote_mapper_cross_site () =
  with_net (fun net ids ->
      let home = ids.(0) and away = ids.(1) in
      let files = Seg.Mem_mapper.create ~name:"nfs" () in
      let key =
        Seg.Mem_mapper.create_segment files
          ~initial:(Bytes.make (2 * ps) 'N')
          ()
      in
      let remote =
        Net.Network.remote_mapper net ~home (Seg.Mem_mapper.mapper files)
          ~name:"nfs"
      in
      let away_site = Net.Network.site net away in
      let port = Nucleus.Site.register_mapper away_site remote in
      let cap = Seg.Capability.make ~port ~key in
      let actor = Nucleus.Actor.create away_site in
      let _ =
        Nucleus.Actor.rgn_map actor ~addr:0 ~size:(2 * ps)
          ~prot:Hw.Prot.read_write cap ~offset:0
      in
      let engine = away_site.Nucleus.Site.engine in
      let t0 = Hw.Engine.now engine in
      Alcotest.(check char) "remote page readable" 'N'
        (Bytes.get (Nucleus.Actor.read actor ~addr:0 ~len:1) 0);
      Alcotest.(check bool) "round trip latency paid" true
        (Hw.Engine.now engine - t0 >= Hw.Sim_time.ms 2);
      (* cached afterwards: no more wire traffic *)
      let msgs = Net.Network.messages_sent net in
      Alcotest.(check char) "second read local" 'N'
        (Bytes.get (Nucleus.Actor.read actor ~addr:4 ~len:1) 0);
      Alcotest.(check int) "no extra messages" msgs
        (Net.Network.messages_sent net);
      (* writes sync back across the wire *)
      Nucleus.Actor.write actor ~addr:0 (Bytes.of_string "DIRTY");
      Core.Cache.sync_all away_site.Nucleus.Site.pvm
        (Seg.Segment_manager.bind away_site.Nucleus.Site.segd cap);
      let home_mapper = Seg.Mem_mapper.mapper files in
      Alcotest.(check string) "data reached the home site" "DIRTY"
        (Bytes.to_string (home_mapper.Seg.Mapper.read ~key ~offset:0 ~size:5)))

let () =
  Alcotest.run "net"
    [
      ( "net",
        [
          Alcotest.test_case "local fast path" `Quick
            test_local_send_uses_fast_path;
          Alcotest.test_case "remote crosses wire" `Quick
            test_remote_send_crosses_wire;
          Alcotest.test_case "receive site check" `Quick
            test_receive_wrong_site_rejected;
          Alcotest.test_case "cross-site producer/consumer" `Quick
            test_cross_site_producer_consumer;
          Alcotest.test_case "remote mapper (distributed FS)" `Quick
            test_remote_mapper_cross_site;
        ] );
    ]
