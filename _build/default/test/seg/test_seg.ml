(* Segment-manager tests: capability binding, reference counting,
   retention (segment caching), swap via the default mapper, mapper
   device latency. *)

open Seg

let ps = 8192

let with_env ?(frames = 64) ?(retention_capacity = 4) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
      let segd =
        Segment_manager.create ~retention_capacity ~pvm ~default_mapper_port:0
          ()
      in
      let store = Mem_mapper.create ~name:"store" () in
      let port = Segment_manager.register_mapper segd (Mem_mapper.mapper store) in
      Alcotest.(check int) "default mapper gets the expected port" 0 port;
      f ~engine ~pvm ~segd ~store ~port)

let test_capabilities () =
  let c1 = Capability.mint ~port:3 and c2 = Capability.mint ~port:3 in
  Alcotest.(check bool) "keys are unguessable/distinct" false
    (Capability.equal c1 c2);
  Alcotest.(check bool) "self equal" true (Capability.equal c1 c1);
  Alcotest.(check bool) "hash consistent" true
    (Capability.hash c1 = Capability.hash (Capability.make ~port:3 ~key:c1.key))

let test_bind_roundtrip () =
  with_env (fun ~engine:_ ~pvm ~segd ~store ~port ->
      let key =
        Mem_mapper.create_segment store
          ~initial:(Bytes.of_string "segment contents here") ()
      in
      let cap = Capability.make ~port ~key in
      let cache = Segment_manager.bind segd cap in
      let data = Core.Cache.copy_back pvm cache ~offset:0 ~size:16 in
      Alcotest.(check string) "mapped data pulled from mapper"
        "segment contents" (Bytes.to_string data);
      (* write through a mapping; sync pushes to the mapper *)
      let ctx = Core.Context.create pvm in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.make ps 'W');
      Core.Cache.sync pvm cache ~offset:0 ~size:ps;
      Alcotest.(check bool) "mapper saw the write" true
        (Mem_mapper.writes store > 0);
      Core.Context.destroy pvm ctx;
      Segment_manager.unbind segd cap)

let test_refcounting_shares_cache () =
  with_env (fun ~engine:_ ~pvm:_ ~segd ~store ~port ->
      let key = Mem_mapper.create_segment store () in
      let cap = Capability.make ~port ~key in
      let c1 = Segment_manager.bind segd cap in
      let c2 = Segment_manager.bind segd cap in
      Alcotest.(check bool) "same local cache for same capability" true
        (c1 == c2);
      Alcotest.(check int) "bind hit counted" 1
        (Segment_manager.stats segd).bind_hits;
      Segment_manager.unbind segd cap;
      Segment_manager.unbind segd cap)

let test_retention_hit () =
  with_env (fun ~engine:_ ~pvm ~segd ~store ~port ->
      let key = Mem_mapper.create_segment store () in
      let cap = Capability.make ~port ~key in
      let c1 = Segment_manager.bind segd cap in
      Core.Cache.fill_up pvm c1 ~offset:0 (Bytes.make ps 'R');
      Segment_manager.unbind segd cap;
      Alcotest.(check int) "cache retained" 1
        (Segment_manager.retained_count segd);
      let reads_before = Mem_mapper.reads store in
      let c2 = Segment_manager.bind segd cap in
      Alcotest.(check bool) "same cache revived" true (c1 == c2);
      Alcotest.(check int) "retention hit counted" 1
        (Segment_manager.stats segd).retention_hits;
      (* the data is still cached: no mapper read needed *)
      let data = Core.Cache.copy_back pvm c2 ~offset:0 ~size:4 in
      Alcotest.(check string) "cached data survives retention" "RRRR"
        (Bytes.to_string data);
      Alcotest.(check int) "no new mapper reads" reads_before
        (Mem_mapper.reads store);
      Segment_manager.unbind segd cap)

let test_retention_eviction_lru () =
  with_env ~retention_capacity:2 (fun ~engine:_ ~pvm:_ ~segd ~store ~port ->
      let caps =
        List.init 4 (fun _ ->
            Capability.make ~port ~key:(Mem_mapper.create_segment store ()))
      in
      List.iter (fun cap -> ignore (Segment_manager.bind segd cap)) caps;
      List.iter (fun cap -> Segment_manager.unbind segd cap) caps;
      Alcotest.(check int) "capacity enforced" 2
        (Segment_manager.retained_count segd);
      Alcotest.(check int) "evictions counted" 2
        (Segment_manager.stats segd).retention_evictions;
      (* most recently unbound survive: rebinding the last two hits *)
      let last_two = List.filteri (fun i _ -> i >= 2) caps in
      List.iter (fun cap -> ignore (Segment_manager.bind segd cap)) last_two;
      Alcotest.(check int) "LRU kept the recent ones" 2
        (Segment_manager.stats segd).retention_hits)

let test_retention_flushes_dirty_data () =
  with_env ~retention_capacity:0 (fun ~engine:_ ~pvm ~segd ~store ~port ->
      let key = Mem_mapper.create_segment store () in
      let cap = Capability.make ~port ~key in
      let ctx = Core.Context.create pvm in
      let cache = Segment_manager.bind segd cap in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
          cache ~offset:0
      in
      Core.Pvm.write pvm ctx ~addr:0 (Bytes.make 16 'd');
      Core.Context.destroy pvm ctx;
      Segment_manager.unbind segd cap;
      (* retention off: cache destroyed, but data must have been synced *)
      let m = Segment_manager.mapper_of_port segd port in
      let back = m.Mapper.read ~key ~offset:0 ~size:16 in
      Alcotest.(check string) "dirty data flushed at drop"
        (String.make 16 'd') (Bytes.to_string back))

let test_swap_allocation_via_default_mapper () =
  with_env ~frames:4 (fun ~engine:_ ~pvm ~segd ~store ~port:_ ->
      let ctx = Core.Context.create pvm in
      let cache = Segment_manager.create_temporary segd in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(16 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      let segments_before = Mem_mapper.segment_count store in
      for page = 0 to 7 do
        Core.Pvm.write pvm ctx ~addr:(page * ps)
          (Bytes.make 8 (Char.chr (65 + page)))
      done;
      Alcotest.(check int) "one swap segment allocated on first pushOut"
        (segments_before + 1)
        (Mem_mapper.segment_count store);
      Alcotest.(check int) "swap allocation recorded" 1
        (Segment_manager.stats segd).swap_segments;
      for page = 0 to 7 do
        Alcotest.(check char)
          (Printf.sprintf "page %d round-trips through swap" page)
          (Char.chr (65 + page))
          (Bytes.get (Core.Pvm.read pvm ctx ~addr:(page * ps) ~len:1) 0)
      done)

let test_device_latency_accounted () =
  let engine = Hw.Engine.create () in
  Hw.Engine.run engine (fun () ->
      let pvm = Core.Pvm.create ~frames:16 ~cost:Hw.Cost.free ~engine () in
      let segd =
        Segment_manager.create ~pvm ~default_mapper_port:0 ()
      in
      let disk =
        Mem_mapper.create
          ~seek_time:(Hw.Sim_time.ms 8)
          ~transfer_time_per_page:(Hw.Sim_time.ms 2)
          ~name:"disk" ()
      in
      let port = Segment_manager.register_mapper segd (Mem_mapper.mapper disk) in
      let key = Mem_mapper.create_segment disk () in
      let cap = Capability.make ~port ~key in
      let ctx = Core.Context.create pvm in
      let cache = Segment_manager.bind segd cap in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(4 * ps)
          ~prot:Hw.Prot.read_only cache ~offset:0
      in
      let t0 = Hw.Engine.now engine in
      Core.Pvm.touch pvm ctx ~addr:0 ~access:`Read;
      let elapsed = Hw.Engine.now engine - t0 in
      Alcotest.(check int) "one page fault costs seek + one transfer"
        (Hw.Sim_time.ms 10) elapsed)

let test_mapper_truncate_and_size () =
  with_env (fun ~engine:_ ~pvm:_ ~segd ~store ~port ->
      let key =
        Mem_mapper.create_segment store ~initial:(Bytes.make (3 * ps) 't') ()
      in
      let m = Segment_manager.mapper_of_port segd port in
      Alcotest.(check int) "segment_size" (3 * ps)
        (m.Mapper.segment_size ~key);
      m.Mapper.truncate ~key ~size:ps;
      Alcotest.(check int) "truncated" ps (m.Mapper.segment_size ~key);
      (* reads past the end are sparse zeroes *)
      Alcotest.(check char) "sparse read beyond extent" '\000'
        (Bytes.get (m.Mapper.read ~key ~offset:(2 * ps) ~size:1) 0);
      (* writes grow it back *)
      m.Mapper.write ~key ~offset:(4 * ps) (Bytes.of_string "grow");
      Alcotest.(check int) "grown" ((4 * ps) + 4) (m.Mapper.segment_size ~key);
      m.Mapper.destroy_segment ~key;
      Alcotest.check_raises "destroyed key rejected" Mapper.Bad_capability
        (fun () -> ignore (m.Mapper.segment_size ~key)))

let test_bad_capability () =
  with_env (fun ~engine:_ ~pvm:_ ~segd ~store:_ ~port ->
      Alcotest.check_raises "unknown key rejected" Mapper.Bad_capability
        (fun () ->
          ignore (Segment_manager.bind segd (Capability.mint ~port)));
      Alcotest.check_raises "unknown port rejected" Mapper.Bad_capability
        (fun () ->
          ignore (Segment_manager.bind segd (Capability.mint ~port:99))))

let () =
  Alcotest.run "seg"
    [
      ( "seg",
        [
          Alcotest.test_case "capabilities" `Quick test_capabilities;
          Alcotest.test_case "bind roundtrip" `Quick test_bind_roundtrip;
          Alcotest.test_case "refcounting shares cache" `Quick
            test_refcounting_shares_cache;
          Alcotest.test_case "retention hit" `Quick test_retention_hit;
          Alcotest.test_case "retention eviction LRU" `Quick
            test_retention_eviction_lru;
          Alcotest.test_case "retention flushes dirty data" `Quick
            test_retention_flushes_dirty_data;
          Alcotest.test_case "swap via default mapper" `Quick
            test_swap_allocation_via_default_mapper;
          Alcotest.test_case "device latency accounted" `Quick
            test_device_latency_accounted;
          Alcotest.test_case "mapper truncate and size" `Quick
            test_mapper_truncate_and_size;
          Alcotest.test_case "bad capability" `Quick test_bad_capability;
        ] );
    ]
