test/mix/test_vfs.ml: Alcotest Bytes Char Hw Image Mix Nucleus Printf Process String Vfs
