test/mix/test_mix_main.mli:
