test/mix/test_mix.ml: Alcotest Bytes Char Core Hw Image Mix Nucleus Pipe Printf Process
