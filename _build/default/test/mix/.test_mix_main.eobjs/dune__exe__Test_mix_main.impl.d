test/mix/test_mix_main.ml: Alcotest Test_mix Test_vfs
