(* Chorus/MIX tests: the Unix process model built on the rgn*
   operations — exec layout, fork COW semantics, text sharing, wait,
   pipes, and the fork-heavy shell pattern the history-object design
   targets. *)

open Mix

let ps = 8192

let with_mix ?(frames = 512) ?(retention_capacity = 64) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let site =
        Nucleus.Site.create ~frames ~retention_capacity ~cost:Hw.Cost.free
          ~engine ()
      in
      let images = Image.create_store site in
      let _sh =
        Image.add_image images ~name:"sh"
          ~text:(Bytes.of_string "SH TEXT: exec loop")
          ~data:(Bytes.of_string "SH DATA: prompt=$ ")
          ~bss_size:ps ()
      in
      let _cc =
        Image.add_image images ~name:"cc"
          ~text:(Bytes.make (4 * ps) 'C')
          ~data:(Bytes.make (2 * ps) 'd')
          ()
      in
      let m = Process.create_manager site images in
      f ~site ~images ~m)

let test_exec_layout () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let p = Process.spawn_init m ~image:"sh" in
      Alcotest.(check string) "text mapped" "SH TEXT"
        (Bytes.to_string (Process.read p ~addr:Process.text_base ~len:7));
      Alcotest.(check string) "data mapped" "SH DATA"
        (Bytes.to_string (Process.read p ~addr:Process.data_base ~len:7));
      (* bss and stack are zero *)
      Alcotest.(check char) "bss zero" '\000'
        (Bytes.get (Process.read p ~addr:Process.bss_base ~len:1) 0);
      Alcotest.(check char) "stack zero" '\000'
        (Bytes.get (Process.read p ~addr:Process.stack_base ~len:1) 0);
      (* text is not writable *)
      Alcotest.check_raises "text write faults"
        (Core.Gmi.Protection_fault Process.text_base) (fun () ->
          Process.write p ~addr:Process.text_base (Bytes.of_string "x")))

let test_data_writes_private () =
  with_mix (fun ~site ~images:_ ~m ->
      let p1 = Process.spawn_init m ~image:"sh" in
      let p2 = Process.spawn_init m ~image:"sh" in
      Process.write p1 ~addr:Process.data_base (Bytes.of_string "CHANGED");
      Alcotest.(check string) "other instance unaffected" "SH DATA"
        (Bytes.to_string (Process.read p2 ~addr:Process.data_base ~len:7));
      ignore site)

let test_fork_cow () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let parent = Process.spawn_init m ~image:"sh" in
      Process.write parent ~addr:Process.data_base
        (Bytes.of_string "parent-data");
      Process.write parent ~addr:Process.stack_base
        (Bytes.of_string "parent-stack");
      let child = Process.fork m parent in
      Alcotest.(check string) "child sees parent data" "parent-data"
        (Bytes.to_string (Process.read child ~addr:Process.data_base ~len:11));
      Alcotest.(check string) "child sees parent stack" "parent-stack"
        (Bytes.to_string
           (Process.read child ~addr:Process.stack_base ~len:12));
      (* divergence both ways *)
      Process.write parent ~addr:Process.data_base (Bytes.of_string "PARENT!");
      Process.write child ~addr:Process.stack_base (Bytes.of_string "CHILD!!");
      Alcotest.(check string) "child keeps data snapshot" "parent-data"
        (Bytes.to_string (Process.read child ~addr:Process.data_base ~len:11));
      Alcotest.(check string) "parent keeps stack" "parent-stack"
        (Bytes.to_string
           (Process.read parent ~addr:Process.stack_base ~len:12));
      Alcotest.(check string) "parent sees own write" "PARENT!"
        (Bytes.to_string (Process.read parent ~addr:Process.data_base ~len:7)))

let test_fork_shares_text () =
  with_mix (fun ~site ~images:_ ~m ->
      let parent = Process.spawn_init m ~image:"sh" in
      Process.read parent ~addr:Process.text_base ~len:1 |> ignore;
      let frames_after_parent =
        Hw.Phys_mem.used_frames (Core.Pvm.memory site.Nucleus.Site.pvm)
      in
      let child = Process.fork m parent in
      Process.read child ~addr:Process.text_base ~len:1 |> ignore;
      (* no new frame for the text page: same local cache *)
      Alcotest.(check int) "text page shared, no new frame"
        frames_after_parent
        (Hw.Phys_mem.used_frames (Core.Pvm.memory site.Nucleus.Site.pvm)))

let test_fork_exit_wait () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let parent = Process.spawn_init m ~image:"sh" in
      let child = Process.fork m parent in
      Alcotest.(check int) "two live processes" 2 (Process.live_processes m);
      Alcotest.(check bool) "nothing to reap yet" true
        (Process.wait m parent = None);
      Process.write child ~addr:Process.data_base (Bytes.of_string "bye");
      Process.exit_ m child ~status:42;
      (match Process.wait m parent with
      | Some (reaped, status) ->
        Alcotest.(check int) "right child" (Process.pid child)
          (Process.pid reaped);
        Alcotest.(check int) "status" 42 status
      | None -> Alcotest.fail "expected a zombie child");
      Alcotest.(check int) "one live process" 1 (Process.live_processes m);
      (* parent data untouched by child's writes *)
      Alcotest.(check string) "parent data intact" "SH DATA"
        (Bytes.to_string (Process.read parent ~addr:Process.data_base ~len:7)))

(* The paper's §4.2.2 normal case: the parent exits while the child
   continues; remaining unmodified parent data must survive. *)
let test_parent_exits_first () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let parent = Process.spawn_init m ~image:"sh" in
      Process.write parent ~addr:Process.data_base
        (Bytes.of_string "inheritance");
      let child = Process.fork m parent in
      Process.exit_ m parent ~status:0;
      Alcotest.(check string) "child still reads inherited data" "inheritance"
        (Bytes.to_string (Process.read child ~addr:Process.data_base ~len:11)))

let test_exec_replaces_image () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let p = Process.spawn_init m ~image:"sh" in
      Process.write p ~addr:Process.data_base (Bytes.of_string "old-state");
      Process.exec m p ~image:"cc";
      Alcotest.(check char) "new text" 'C'
        (Bytes.get (Process.read p ~addr:Process.text_base ~len:1) 0);
      Alcotest.(check char) "new data" 'd'
        (Bytes.get (Process.read p ~addr:Process.data_base ~len:1) 0);
      Alcotest.(check string) "image name updated" "cc" (Process.image_name p))

(* Repeated exec of the same image: segment caching (§5.1.3) keeps the
   text/data caches warm, so the file mapper is not re-read. *)
let test_segment_caching_on_exec () =
  with_mix (fun ~site:_ ~images ~m ->
      let p = Process.spawn_init m ~image:"cc" in
      (* touch the whole text once *)
      ignore (Process.read p ~addr:Process.text_base ~len:(4 * ps));
      let reads_after_first = Image.mapper_reads images in
      for _ = 1 to 5 do
        Process.exec m p ~image:"cc";
        ignore (Process.read p ~addr:Process.text_base ~len:(4 * ps))
      done;
      Alcotest.(check int)
        "no further file reads thanks to segment caching" reads_after_first
        (Image.mapper_reads images))

(* Shell-like pattern: fork, child execs and exits, repeatedly.  This
   is the §4.2.5 scenario where Mach's shadow chains need GC; history
   trees keep the parent's structure flat. *)
let test_shell_pattern () =
  with_mix (fun ~site ~images:_ ~m ->
      let shell = Process.spawn_init m ~image:"sh" in
      Process.write shell ~addr:Process.data_base
        (Bytes.of_string "shell-state-0");
      for i = 1 to 8 do
        let child = Process.fork m shell in
        Process.exec m child ~image:"cc";
        Process.write child ~addr:Process.data_base (Bytes.make 64 'x');
        Process.exit_ m child ~status:0;
        ignore (Process.wait m shell);
        (* the shell keeps mutating its own data *)
        Process.write shell ~addr:Process.data_base
          (Bytes.of_string (Printf.sprintf "shell-state-%d" i))
      done;
      Alcotest.(check string) "shell state correct after 8 children"
        "shell-state-8"
        (Bytes.to_string (Process.read shell ~addr:Process.data_base ~len:13));
      Alcotest.(check (list string))
        "history invariants hold" []
        (Core.Pvm.check_invariant site.Nucleus.Site.pvm))

(* Unix sbrk: heap growth, inheritance across fork, reset on exec. *)
let test_sbrk () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let p = Process.spawn_init m ~image:"sh" in
      let brk0 = Process.brk p in
      let old = Process.sbrk m p (3 * ps) in
      Alcotest.(check int) "sbrk returns old break" brk0 old;
      Alcotest.(check int) "break advanced" (brk0 + (3 * ps)) (Process.brk p);
      Process.write p ~addr:old (Bytes.of_string "heap!");
      Alcotest.(check string) "heap usable" "heap!"
        (Bytes.to_string (Process.read p ~addr:old ~len:5));
      (* unaligned growth rounds up *)
      let old2 = Process.sbrk m p 100 in
      Alcotest.(check int) "rounded to a page" (old2 + ps) (Process.brk p);
      (* fork copies the heap *)
      Process.write p ~addr:old (Bytes.of_string "PARNT");
      let child = Process.fork m p in
      Alcotest.(check int) "child inherits break" (Process.brk p)
        (Process.brk child);
      Alcotest.(check string) "child sees heap" "PARNT"
        (Bytes.to_string (Process.read child ~addr:old ~len:5));
      Process.write child ~addr:old (Bytes.of_string "CHILD");
      Alcotest.(check string) "heap is COW" "PARNT"
        (Bytes.to_string (Process.read p ~addr:old ~len:5));
      (* exec resets the break *)
      Process.exec m p ~image:"cc";
      Alcotest.(check int) "exec resets break" brk0 (Process.brk p);
      Alcotest.check_raises "old heap unmapped after exec"
        (Core.Gmi.Segmentation_fault old) (fun () ->
          ignore (Process.read p ~addr:old ~len:1)))

let test_pipe () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let producer = Process.spawn_init m ~image:"sh" in
      let consumer = Process.fork m producer in
      let pipe = Pipe.create m in
      Process.write producer ~addr:Process.bss_base
        (Bytes.of_string "pipe payload!");
      Pipe.write m producer pipe ~addr:Process.bss_base ~len:13;
      Alcotest.(check int) "one message queued" 1 (Pipe.pending pipe);
      let len = Pipe.read m consumer pipe ~addr:Process.bss_base in
      Alcotest.(check int) "length preserved" 13 len;
      Alcotest.(check string) "payload transported" "pipe payload!"
        (Bytes.to_string (Process.read consumer ~addr:Process.bss_base ~len:13)))

let test_pipe_large_write_splits () =
  with_mix (fun ~site:_ ~images:_ ~m ->
      let producer = Process.spawn_init m ~image:"sh" in
      let consumer = Process.fork m producer in
      let pipe = Pipe.create m in
      (* 20 pages > 64 KB: must split into 3 messages *)
      let total = 20 * ps in
      let big =
        Bytes.init total (fun i -> Char.chr (65 + (i / ps mod 26)))
      in
      (* enlarge bss for the payload *)
      let mapping =
        Nucleus.Actor.rgn_allocate (Process.actor producer)
          ~addr:0x3000_0000 ~size:total ~prot:Hw.Prot.read_write
      in
      ignore mapping;
      let sink =
        Nucleus.Actor.rgn_allocate (Process.actor consumer)
          ~addr:0x3000_0000 ~size:total ~prot:Hw.Prot.read_write
      in
      ignore sink;
      Process.write producer ~addr:0x3000_0000 big;
      Pipe.write m producer pipe ~addr:0x3000_0000 ~len:total;
      Alcotest.(check int) "three messages" 3 (Pipe.pending pipe);
      let received = ref 0 in
      while Pipe.pending pipe > 0 do
        received :=
          !received
          + Pipe.read m consumer pipe ~addr:(0x3000_0000 + !received)
      done;
      Alcotest.(check int) "all bytes received" total !received;
      Alcotest.(check bytes) "payload identical" big
        (Process.read consumer ~addr:0x3000_0000 ~len:total))

let tests = ("mix",
        [
          Alcotest.test_case "exec layout" `Quick test_exec_layout;
          Alcotest.test_case "data writes private" `Quick
            test_data_writes_private;
          Alcotest.test_case "fork COW" `Quick test_fork_cow;
          Alcotest.test_case "fork shares text" `Quick test_fork_shares_text;
          Alcotest.test_case "fork/exit/wait" `Quick test_fork_exit_wait;
          Alcotest.test_case "parent exits first" `Quick
            test_parent_exits_first;
          Alcotest.test_case "exec replaces image" `Quick
            test_exec_replaces_image;
          Alcotest.test_case "segment caching on exec" `Quick
            test_segment_caching_on_exec;
          Alcotest.test_case "shell pattern" `Quick test_shell_pattern;
          Alcotest.test_case "sbrk" `Quick test_sbrk;
          Alcotest.test_case "pipe" `Quick test_pipe;
          Alcotest.test_case "pipe large write splits" `Quick
            test_pipe_large_write_splits;
        ] )
