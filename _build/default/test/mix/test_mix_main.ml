let () = Alcotest.run "mix" [ Test_mix.tests; ("vfs", Test_vfs.tests) ]
