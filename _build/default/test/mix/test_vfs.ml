(* VFS tests: Unix-style file I/O over segments, and the paper's
   unified-cache guarantee — read/write and mmap of the same file can
   never diverge because they go through one local cache (§3.2). *)

open Mix

let ps = 8192

let with_vfs ?(frames = 256) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let site = Nucleus.Site.create ~frames ~cost:Hw.Cost.free ~engine () in
      let images = Image.create_store site in
      let _ =
        Image.add_image images ~name:"sh" ~text:(Bytes.make ps 'T')
          ~data:(Bytes.make ps 'D') ()
      in
      let m = Process.create_manager site images in
      let vfs = Vfs.create m in
      f ~m ~vfs)

let test_create_open_rw () =
  with_vfs (fun ~m:_ ~vfs ->
      Vfs.create_file vfs ~path:"/etc/motd"
        ~initial:(Bytes.of_string "welcome to chorus/mix") ();
      Alcotest.(check bool) "exists" true (Vfs.exists vfs ~path:"/etc/motd");
      let fd = Vfs.openf vfs ~path:"/etc/motd" in
      Alcotest.(check int) "size" 21 (Vfs.size vfs fd);
      Alcotest.(check string) "read" "welcome"
        (Bytes.to_string (Vfs.read vfs fd ~len:7));
      Alcotest.(check int) "position advanced" 7 (Vfs.tell vfs fd);
      Alcotest.(check string) "sequential read" " to chorus/mix"
        (Bytes.to_string (Vfs.read vfs fd ~len:100));
      Alcotest.(check string) "read at EOF empty" ""
        (Bytes.to_string (Vfs.read vfs fd ~len:10));
      Vfs.lseek vfs fd ~pos:11;
      Vfs.write vfs fd (Bytes.of_string "CHORUS");
      Vfs.lseek vfs fd ~pos:0;
      Alcotest.(check string) "overwrite visible" "welcome to CHORUS/mix"
        (Bytes.to_string (Vfs.read vfs fd ~len:21));
      Vfs.close vfs fd;
      Alcotest.check_raises "unknown path" (Vfs.No_such_file "/nope")
        (fun () -> ignore (Vfs.openf vfs ~path:"/nope")))

let test_grow_and_fsync () =
  with_vfs (fun ~m:_ ~vfs ->
      Vfs.create_file vfs ~path:"/log" ();
      let fd = Vfs.openf vfs ~path:"/log" in
      let writes_before = Vfs.mapper_writes vfs in
      for i = 0 to 9 do
        Vfs.write vfs fd (Bytes.of_string (Printf.sprintf "line-%02d\n" i))
      done;
      Alcotest.(check int) "size grows" 80 (Vfs.size vfs fd);
      Alcotest.(check int) "writes are cached, not device writes"
        writes_before (Vfs.mapper_writes vfs);
      Vfs.fsync vfs fd;
      Alcotest.(check bool) "fsync reached the mapper" true
        (Vfs.mapper_writes vfs > writes_before);
      Vfs.lseek vfs fd ~pos:72;
      Alcotest.(check string) "data intact" "line-09\n"
        (Bytes.to_string (Vfs.read vfs fd ~len:8)))

(* The dual-caching demonstration: explicit I/O and a mapping of the
   same file stay coherent with no flushes in between. *)
let test_unified_cache_no_dual_caching () =
  with_vfs (fun ~m ~vfs ->
      Vfs.create_file vfs ~path:"/shared.db"
        ~initial:(Bytes.make (2 * ps) '.') ();
      let proc = Process.spawn_init m ~image:"sh" in
      let fd = Vfs.openf vfs ~path:"/shared.db" in
      let map_addr = 0x5000_0000 in
      let _mapping =
        Vfs.mmap vfs fd proc ~addr:map_addr ~size:(2 * ps)
          ~prot:Hw.Prot.read_write
      in
      (* write() then read through the mapping: NO fsync *)
      Vfs.lseek vfs fd ~pos:100;
      Vfs.write vfs fd (Bytes.of_string "via-write()");
      Alcotest.(check string) "write() visible through mmap immediately"
        "via-write()"
        (Bytes.to_string (Process.read proc ~addr:(map_addr + 100) ~len:11));
      (* store through the mapping, then read(): NO msync *)
      Process.write proc ~addr:(map_addr + ps) (Bytes.of_string "via-store");
      Vfs.lseek vfs fd ~pos:ps;
      Alcotest.(check string) "store visible through read() immediately"
        "via-store"
        (Bytes.to_string (Vfs.read vfs fd ~len:9));
      (* and the device saw one pull per touched page and zero
         writes: a single cache, nothing re-read or written through
         for coherence *)
      Alcotest.(check int) "one pull per touched page" 2
        (Vfs.mapper_reads vfs);
      Alcotest.(check int) "no write-through" 0 (Vfs.mapper_writes vfs))

let test_two_fds_share_cache () =
  with_vfs (fun ~m:_ ~vfs ->
      Vfs.create_file vfs ~path:"/f" ~initial:(Bytes.make ps 'x') ();
      let a = Vfs.openf vfs ~path:"/f" and b = Vfs.openf vfs ~path:"/f" in
      Vfs.write vfs a (Bytes.of_string "first-writer");
      Alcotest.(check string) "second fd sees it without sync" "first-writer"
        (Bytes.to_string (Vfs.read vfs b ~len:12));
      Vfs.close vfs a;
      Vfs.close vfs b)

(* File cache under memory pressure: clean file pages are reclaimed
   and re-pulled; dirty ones are NOT written back until fsync (the
   cache has a backing, so eviction pushes — check contents stay
   correct either way). *)
let test_vfs_under_pressure () =
  with_vfs ~frames:8 (fun ~m:_ ~vfs ->
      let total = 24 * ps in
      Vfs.create_file vfs ~path:"/big" ~initial:(Bytes.make total 'F') ();
      let fd = Vfs.openf vfs ~path:"/big" in
      (* scribble a marker in each page, walking far beyond memory *)
      for page = 0 to 23 do
        Vfs.lseek vfs fd ~pos:(page * ps);
        Vfs.write vfs fd (Bytes.make 4 (Char.chr (97 + (page mod 26))))
      done;
      (* everything reads back right despite evictions *)
      for page = 23 downto 0 do
        Vfs.lseek vfs fd ~pos:(page * ps);
        let b = Vfs.read vfs fd ~len:8 in
        Alcotest.(check string)
          (Printf.sprintf "page %d marker+original" page)
          (String.make 4 (Char.chr (97 + (page mod 26))) ^ "FFFF")
          (Bytes.to_string b)
      done;
      Vfs.close vfs fd)

let tests =
  [
    Alcotest.test_case "vfs under pressure" `Quick test_vfs_under_pressure;
    Alcotest.test_case "create/open/read/write" `Quick test_create_open_rw;
    Alcotest.test_case "grow and fsync" `Quick test_grow_and_fsync;
    Alcotest.test_case "unified cache (no dual caching)" `Quick
      test_unified_cache_no_dual_caching;
    Alcotest.test_case "two fds share one cache" `Quick
      test_two_fds_share_cache;
  ]
