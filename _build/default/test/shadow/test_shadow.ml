(* Tests of the Mach-style shadow-object baseline: COW semantics,
   chain growth under repeated copies, and chain collapse. *)

let ps = 8192

let with_vm ?(frames = 512) f =
  let engine = Hw.Engine.create () in
  Hw.Engine.run_fn engine (fun () ->
      let vm = Shadow.Shadow_vm.create ~frames ~cost:Hw.Cost.free ~engine () in
      f vm)

let wpage vm sp ~base ~page c =
  Shadow.Shadow_vm.write vm sp ~addr:(base + (page * ps)) (Bytes.make ps c)

let rpage vm sp ~base ~page =
  Bytes.get (Shadow.Shadow_vm.read vm sp ~addr:(base + (page * ps)) ~len:1) 0

let test_zero_fill () =
  with_vm (fun vm ->
      let sp = Shadow.Shadow_vm.space_create vm in
      let _e =
        Shadow.Shadow_vm.allocate vm sp ~addr:0 ~size:(4 * ps) ~prot:Hw.Prot.read_write
      in
      Alcotest.(check char) "fresh memory is zero" '\000' (rpage vm sp ~base:0 ~page:2);
      wpage vm sp ~base:0 ~page:2 'z';
      Alcotest.(check char) "write sticks" 'z' (rpage vm sp ~base:0 ~page:2))

let test_cow_basic () =
  with_vm (fun vm ->
      let sp = Shadow.Shadow_vm.space_create vm in
      let src =
        Shadow.Shadow_vm.allocate vm sp ~addr:0 ~size:(4 * ps) ~prot:Hw.Prot.read_write
      in
      wpage vm sp ~base:0 ~page:1 'a';
      let _copy =
        Shadow.Shadow_vm.copy_entry vm src ~dst_space:sp ~dst_addr:(64 * ps)
      in
      Alcotest.(check int)
        "two shadow objects created" 2
        (Shadow.Shadow_vm.stats vm).n_shadows_created;
      (* copy reads the original *)
      Alcotest.(check char) "copy sees original" 'a'
        (rpage vm sp ~base:(64 * ps) ~page:1);
      (* divergence both ways *)
      wpage vm sp ~base:0 ~page:1 'b';
      Alcotest.(check char) "copy keeps snapshot" 'a'
        (rpage vm sp ~base:(64 * ps) ~page:1);
      wpage vm sp ~base:(64 * ps) ~page:1 'c';
      Alcotest.(check char) "source unaffected" 'b' (rpage vm sp ~base:0 ~page:1);
      Alcotest.(check bool) "real copies happened" true
        ((Shadow.Shadow_vm.stats vm).n_cow_copies >= 2))

(* §4.2.5 problem 1: data modified by the parent is held by its
   shadow; repeated forks grow the chain until collapse merges it. *)
let test_chain_growth_and_collapse () =
  with_vm (fun vm ->
      let sp = Shadow.Shadow_vm.space_create vm in
      let src =
        Shadow.Shadow_vm.allocate vm sp ~addr:0 ~size:(2 * ps) ~prot:Hw.Prot.read_write
      in
      wpage vm sp ~base:0 ~page:0 '0';
      Alcotest.(check int) "no chain initially" 0 (Shadow.Shadow_vm.chain_depth src);
      (* repeated fork-modify-exit, like a shell *)
      for i = 1 to 5 do
        let child =
          Shadow.Shadow_vm.copy_entry vm src ~dst_space:sp ~dst_addr:((64 * i) * ps)
        in
        (* parent modifies its data -> goes into the parent's shadow *)
        wpage vm sp ~base:0 ~page:0 (Char.chr (Char.code '0' + i));
        (* child exits *)
        Shadow.Shadow_vm.entry_destroy vm child
      done;
      Alcotest.(check char) "parent sees latest value" '5'
        (rpage vm sp ~base:0 ~page:0);
      Alcotest.(check bool) "chains collapsed" true
        ((Shadow.Shadow_vm.stats vm).n_collapses > 0);
      Alcotest.(check bool) "chain stays bounded" true
        (Shadow.Shadow_vm.chain_depth src <= 2))

let test_grandchild_snapshot () =
  with_vm (fun vm ->
      let sp = Shadow.Shadow_vm.space_create vm in
      let a =
        Shadow.Shadow_vm.allocate vm sp ~addr:0 ~size:(2 * ps) ~prot:Hw.Prot.read_write
      in
      wpage vm sp ~base:0 ~page:0 'x';
      let b = Shadow.Shadow_vm.copy_entry vm a ~dst_space:sp ~dst_addr:(64 * ps) in
      wpage vm sp ~base:(64 * ps) ~page:1 'y';
      let _c = Shadow.Shadow_vm.copy_entry vm b ~dst_space:sp ~dst_addr:(128 * ps) in
      (* grandchild sees both the root's page 0 and b's page 1 *)
      Alcotest.(check char) "grandchild page 0 via root" 'x'
        (rpage vm sp ~base:(128 * ps) ~page:0);
      Alcotest.(check char) "grandchild page 1 via b" 'y'
        (rpage vm sp ~base:(128 * ps) ~page:1);
      (* b diverges afterwards; grandchild keeps the snapshot *)
      wpage vm sp ~base:(64 * ps) ~page:1 'z';
      Alcotest.(check char) "snapshot preserved" 'y'
        (rpage vm sp ~base:(128 * ps) ~page:1))

let test_frames_released () =
  with_vm ~frames:32 (fun vm ->
      let sp = Shadow.Shadow_vm.space_create vm in
      let src =
        Shadow.Shadow_vm.allocate vm sp ~addr:0 ~size:(8 * ps) ~prot:Hw.Prot.read_write
      in
      for p = 0 to 7 do
        wpage vm sp ~base:0 ~page:p 'm'
      done;
      let copy = Shadow.Shadow_vm.copy_entry vm src ~dst_space:sp ~dst_addr:(64 * ps) in
      for p = 0 to 7 do
        wpage vm sp ~base:(64 * ps) ~page:p 'n'
      done;
      Shadow.Shadow_vm.entry_destroy vm copy;
      Shadow.Shadow_vm.entry_destroy vm src;
      (* everything is freed once both entries die; a fault may not
         have run to trigger the last collapse, but destruction must
         free the chain *)
      Alcotest.(check int)
        "all frames released" 0
        (Hw.Phys_mem.used_frames (Shadow.Shadow_vm.memory vm)))

(* Oracle property, mirroring the PVM one: random writes and COW
   copies match plain byte arrays. *)
let prop_oracle =
  let n_entries = 3 and n_pages = 4 in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (frequency
           [
             ( 3,
               map3
                 (fun e p c -> `Write (e, p, c))
                 (int_bound (n_entries - 1))
                 (int_bound (n_pages - 1))
                 (map Char.chr (int_range 65 90)) );
             ( 1,
               map
                 (fun e -> `Reclone e)
                 (int_bound (n_entries - 1)) );
           ]))
  in
  let print ops =
    String.concat ";"
      (List.map
         (function
           | `Write (e, p, c) -> Printf.sprintf "W(%d,%d,%c)" e p c
           | `Reclone e -> Printf.sprintf "R(%d)" e)
         ops)
  in
  QCheck.Test.make ~count:200 ~name:"shadow COW matches oracle"
    (QCheck.make ~print gen) (fun ops ->
      with_vm (fun vm ->
          let sp = Shadow.Shadow_vm.space_create vm in
          let base i = i * 64 * ps in
          let root =
            Shadow.Shadow_vm.allocate vm sp ~addr:0 ~size:(n_pages * ps)
              ~prot:Hw.Prot.read_write
          in
          ignore root;
          let entries =
            Array.init n_entries (fun i ->
                if i = 0 then root
                else Shadow.Shadow_vm.copy_entry vm root ~dst_space:sp ~dst_addr:(base i))
          in
          let model =
            Array.init n_entries (fun _ -> Bytes.make (n_pages * ps) '\000')
          in
          List.iter
            (fun op ->
              match op with
              | `Write (e, p, c) ->
                let data = Bytes.make 32 c in
                Bytes.blit data 0 model.(e) ((p * ps) + 5) 32;
                Shadow.Shadow_vm.write vm sp ~addr:(base e + (p * ps) + 5) data
              | `Reclone e ->
                if e <> 0 then begin
                  Shadow.Shadow_vm.entry_destroy vm entries.(e);
                  entries.(e) <-
                    Shadow.Shadow_vm.copy_entry vm entries.(0) ~dst_space:sp
                      ~dst_addr:(base e);
                  Bytes.blit model.(0) 0 model.(e) 0 (n_pages * ps)
                end)
            ops;
          Array.iteri
            (fun i _ ->
              let actual =
                Shadow.Shadow_vm.read vm sp ~addr:(base i) ~len:(n_pages * ps)
              in
              if not (Bytes.equal actual model.(i)) then
                QCheck.Test.fail_reportf "entry %d diverged: [%s]" i (print ops))
            entries;
          true))

let () =
  Alcotest.run "shadow"
    [
      ( "shadow",
        [
          Alcotest.test_case "zero fill" `Quick test_zero_fill;
          Alcotest.test_case "cow basic" `Quick test_cow_basic;
          Alcotest.test_case "chain growth and collapse" `Quick
            test_chain_growth_and_collapse;
          Alcotest.test_case "grandchild snapshot" `Quick
            test_grandchild_snapshot;
          Alcotest.test_case "frames released" `Quick test_frames_released;
          QCheck_alcotest.to_alcotest prop_oracle;
        ] );
    ]
