(* GMI conformance: identical semantics tests run over both memory
   managers — the demand-paged PVM and the minimal real-time
   implementation — through the Gmi.S signature.  This is the paper's
   replaceability claim (§5.2): "the MM implementation is the only
   difference between these Nucleus versions". *)

let ps = 8192

module Make (M : Core.Gmi.S) = struct
  let with_mm ?(frames = 256) f =
    let engine = Hw.Engine.create () in
    Hw.Engine.run_fn engine (fun () ->
        let mm = M.create ~frames ~cost:Hw.Cost.free ~engine () in
        f mm)

  let mem_backing ?(size = 64 * ps) () =
    let store = Bytes.make size '\000' in
    ( {
        Core.Gmi.b_name = "conf-seg";
        b_pull_in =
          (fun ~offset ~size ~prot:_ ~fill_up ->
            fill_up ~offset (Bytes.sub store offset size));
        b_get_write_access = (fun ~offset:_ ~size:_ -> ());
        b_push_out =
          (fun ~offset ~size ~copy_back ->
            Bytes.blit (copy_back ~offset ~size) 0 store offset size);
      },
      store )

  let test_zero_fill () =
    with_mm (fun mm ->
        let ctx = M.context_create mm in
        let cache = M.cache_create mm () in
        let _r =
          M.region_create mm ctx ~addr:0 ~size:(4 * ps)
            ~prot:Hw.Prot.read_write cache ~offset:0
        in
        Alcotest.(check bytes) "anonymous memory zero"
          (Bytes.make 64 '\000')
          (M.read mm ctx ~addr:(2 * ps) ~len:64))

  let test_write_read () =
    with_mm (fun mm ->
        let ctx = M.context_create mm in
        let cache = M.cache_create mm () in
        let _r =
          M.region_create mm ctx ~addr:0 ~size:(4 * ps)
            ~prot:Hw.Prot.read_write cache ~offset:0
        in
        M.write mm ctx ~addr:(ps - 7) (Bytes.of_string "straddle");
        Alcotest.(check string) "page-straddling write" "straddle"
          (Bytes.to_string (M.read mm ctx ~addr:(ps - 7) ~len:8)))

  let test_faults () =
    with_mm (fun mm ->
        let ctx = M.context_create mm in
        Alcotest.check_raises "segfault outside regions"
          (Core.Gmi.Segmentation_fault 0) (fun () ->
            M.touch mm ctx ~addr:0 ~access:`Read);
        let cache = M.cache_create mm () in
        let r =
          M.region_create mm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_only
            cache ~offset:0
        in
        M.touch mm ctx ~addr:0 ~access:`Read;
        Alcotest.check_raises "protection fault on read-only region"
          (Core.Gmi.Protection_fault 0) (fun () ->
            M.touch mm ctx ~addr:0 ~access:`Write);
        M.region_set_protection mm r Hw.Prot.read_write;
        M.touch mm ctx ~addr:0 ~access:`Write)

  let test_shared_cache () =
    with_mm (fun mm ->
        let ctx1 = M.context_create mm and ctx2 = M.context_create mm in
        let cache = M.cache_create mm () in
        let _r1 =
          M.region_create mm ctx1 ~addr:0 ~size:(2 * ps)
            ~prot:Hw.Prot.read_write cache ~offset:0
        in
        let _r2 =
          M.region_create mm ctx2 ~addr:(8 * ps) ~size:(2 * ps)
            ~prot:Hw.Prot.read_write cache ~offset:0
        in
        M.write mm ctx1 ~addr:5 (Bytes.of_string "shared");
        Alcotest.(check string) "one cache, two contexts" "shared"
          (Bytes.to_string (M.read mm ctx2 ~addr:(8 * ps + 5) ~len:6)))

  let test_copy_semantics () =
    List.iter
      (fun strategy ->
        with_mm (fun mm ->
            let ctx = M.context_create mm in
            let src = M.cache_create mm () in
            let dst = M.cache_create mm () in
            let _r =
              M.region_create mm ctx ~addr:0 ~size:(4 * ps)
                ~prot:Hw.Prot.read_write src ~offset:0
            in
            let _r2 =
              M.region_create mm ctx ~addr:(64 * ps) ~size:(4 * ps)
                ~prot:Hw.Prot.read_write dst ~offset:0
            in
            M.write mm ctx ~addr:0 (Bytes.make ps 'S');
            M.copy mm ~strategy ~src ~src_off:0 ~dst ~dst_off:0
              ~size:(4 * ps) ();
            (* snapshot semantics regardless of implementation *)
            M.write mm ctx ~addr:0 (Bytes.make ps 'T');
            Alcotest.(check char)
              (Format.asprintf "copy is a snapshot (%a)" Core.Gmi.pp_strategy
                 strategy)
              'S'
              (Bytes.get (M.read mm ctx ~addr:(64 * ps) ~len:1) 0);
            M.write mm ctx ~addr:(64 * ps) (Bytes.make ps 'U');
            Alcotest.(check char) "source unaffected by copy write" 'T'
              (Bytes.get (M.read mm ctx ~addr:0 ~len:1) 0)))
      [ `Auto; `Eager ]

  let test_backed_cache () =
    with_mm (fun mm ->
        let backing, store = mem_backing () in
        Bytes.blit_string "from the segment" 0 store 0 16;
        let cache = M.cache_create mm ~backing () in
        let ctx = M.context_create mm in
        let _r =
          M.region_create mm ctx ~addr:0 ~size:(2 * ps)
            ~prot:Hw.Prot.read_write cache ~offset:0
        in
        Alcotest.(check string) "segment data visible" "from the segment"
          (Bytes.to_string (M.read mm ctx ~addr:0 ~len:16));
        M.write mm ctx ~addr:0 (Bytes.of_string "MODIFIED");
        M.sync mm cache ~offset:0 ~size:(2 * ps);
        Alcotest.(check string) "sync wrote back" "MODIFIED"
          (Bytes.sub_string store 0 8))

  let test_fill_copy_back () =
    with_mm (fun mm ->
        let cache = M.cache_create mm () in
        M.fill_up mm cache ~offset:0 (Bytes.make (2 * ps) 'f');
        Alcotest.(check bytes) "fillUp then copyBack"
          (Bytes.make 32 'f')
          (M.copy_back mm cache ~offset:ps ~size:32))

  let test_lock_no_faults () =
    with_mm (fun mm ->
        let ctx = M.context_create mm in
        let cache = M.cache_create mm () in
        let r =
          M.region_create mm ctx ~addr:0 ~size:(4 * ps)
            ~prot:Hw.Prot.read_write cache ~offset:0
        in
        M.region_lock mm r;
        (* every access must now succeed without going through the
           fault path: spot-check via direct writes *)
        for p = 0 to 3 do
          M.write mm ctx ~addr:(p * ps) (Bytes.of_string "L")
        done;
        M.region_unlock mm r)

  let test_region_destroy_unmaps () =
    with_mm (fun mm ->
        let ctx = M.context_create mm in
        let cache = M.cache_create mm () in
        let r =
          M.region_create mm ctx ~addr:0 ~size:ps ~prot:Hw.Prot.read_write
            cache ~offset:0
        in
        M.write mm ctx ~addr:0 (Bytes.of_string "x");
        M.region_destroy mm r;
        Alcotest.check_raises "destroyed region faults"
          (Core.Gmi.Segmentation_fault 0) (fun () ->
            M.touch mm ctx ~addr:0 ~access:`Read))

  (* Randomised oracle: write/copy sequences behave like byte
     arrays, whatever the implementation defers. *)
  let prop_oracle =
    let n_caches = 3 and n_pages = 3 in
    let gen =
      QCheck.Gen.(
        list_size (int_range 1 20)
          (frequency
             [
               ( 3,
                 map3
                   (fun c p ch -> `Write (c, p, ch))
                   (int_bound (n_caches - 1))
                   (int_bound (n_pages - 1))
                   (map Char.chr (int_range 65 90)) );
               ( 1,
                 map2
                   (fun s d ->
                     `Copy (s, if d = s then (d + 1) mod n_caches else d))
                   (int_bound (n_caches - 1))
                   (int_bound (n_caches - 1)) );
             ]))
    in
    let print ops =
      String.concat ";"
        (List.map
           (function
             | `Write (c, p, ch) -> Printf.sprintf "W(%d,%d,%c)" c p ch
             | `Copy (s, d) -> Printf.sprintf "C(%d->%d)" s d)
           ops)
    in
    QCheck.Test.make ~count:100
      ~name:(Printf.sprintf "oracle conformance: %s" M.name)
      (QCheck.make ~print gen)
      (fun ops ->
        with_mm ~frames:128 (fun mm ->
            let ctx = M.context_create mm in
            let caches = Array.init n_caches (fun _ -> M.cache_create mm ()) in
            Array.iteri
              (fun i cache ->
                ignore
                  (M.region_create mm ctx ~addr:(i * 64 * ps)
                     ~size:(n_pages * ps) ~prot:Hw.Prot.read_write cache
                     ~offset:0))
              caches;
            let model =
              Array.init n_caches (fun _ -> Bytes.make (n_pages * ps) '\000')
            in
            List.iter
              (fun op ->
                match op with
                | `Write (c, p, ch) ->
                  let data = Bytes.make 48 ch in
                  Bytes.blit data 0 model.(c) ((p * ps) + 9) 48;
                  M.write mm ctx ~addr:((c * 64 * ps) + (p * ps) + 9) data
                | `Copy (s, d) ->
                  Bytes.blit model.(s) 0 model.(d) 0 (n_pages * ps);
                  M.copy mm ~src:caches.(s) ~src_off:0 ~dst:caches.(d)
                    ~dst_off:0 ~size:(n_pages * ps) ())
              ops;
            Array.iteri
              (fun i _ ->
                let actual =
                  M.read mm ctx ~addr:(i * 64 * ps) ~len:(n_pages * ps)
                in
                if not (Bytes.equal actual model.(i)) then
                  QCheck.Test.fail_reportf "%s: cache %d diverged on [%s]"
                    M.name i (print ops))
              caches;
            true))

  let tests =
    [
      Alcotest.test_case "zero fill" `Quick test_zero_fill;
      Alcotest.test_case "write/read" `Quick test_write_read;
      Alcotest.test_case "faults" `Quick test_faults;
      Alcotest.test_case "shared cache" `Quick test_shared_cache;
      Alcotest.test_case "copy semantics" `Quick test_copy_semantics;
      Alcotest.test_case "backed cache" `Quick test_backed_cache;
      Alcotest.test_case "fillUp/copyBack" `Quick test_fill_copy_back;
      Alcotest.test_case "lock: no faults" `Quick test_lock_no_faults;
      Alcotest.test_case "region destroy unmaps" `Quick
        test_region_destroy_unmaps;
      QCheck_alcotest.to_alcotest prop_oracle;
    ]
end

module Pvm_suite = Make (Core.Pvm_gmi)
module Minimal_suite = Make (Minimal.Minimal_gmi)
module Simulator_suite = Make (Simulator.Sim_gmi)

(* Real-time property specific to the minimal implementation: after
   region_create, memory is fully resident. *)
let test_minimal_is_eager () =
  let engine = Hw.Engine.create () in
  Hw.Engine.run engine (fun () ->
      let mm =
        Minimal.Minimal_gmi.create ~frames:32 ~cost:Hw.Cost.free ~engine ()
      in
      let ctx = Minimal.Minimal_gmi.context_create mm in
      let cache = Minimal.Minimal_gmi.cache_create mm () in
      let _r =
        Minimal.Minimal_gmi.region_create mm ctx ~addr:0 ~size:(8 * ps)
          ~prot:Hw.Prot.read_write cache ~offset:0
      in
      Alcotest.(check int) "all frames resident up front" 8
        (Minimal.Minimal_gmi.frames_in_use mm))

let () =
  Alcotest.run "gmi-conformance"
    [
      ("pvm", Pvm_suite.tests);
      ("minimal", Minimal_suite.tests);
      ("simulator", Simulator_suite.tests);
      ( "minimal-specific",
        [ Alcotest.test_case "eager residency" `Quick test_minimal_is_eager ]
      );
    ]
