(* Wall-clock micro-benchmarks (Bechamel): one test per paper table,
   measuring the real execution cost of our simulator's hot paths.
   These complement the simulated-clock tables: absolute 1989
   milliseconds are reproduced by the cost model, while these numbers
   show the reproduction itself is fast. *)

open Bechamel
open Toolkit

let ps = 8192

(* Table 6 path: region create + zero-fill faults + destroy. *)
let test_table6 =
  Test.make ~name:"table6: zero-fill 32 pages"
    (Staged.stage (fun () ->
         let engine = Hw.Engine.create () in
         Hw.Engine.run engine (fun () ->
             let pvm = Core.Pvm.create ~frames:64 ~cost:Hw.Cost.free ~engine () in
             let ctx = Core.Context.create pvm in
             let cache = Core.Cache.create pvm () in
             let region =
               Core.Region.create pvm ctx ~addr:0 ~size:(32 * ps)
                 ~prot:Hw.Prot.read_write cache ~offset:0
             in
             for p = 0 to 31 do
               Core.Pvm.touch pvm ctx ~addr:(p * ps) ~access:`Write
             done;
             Core.Region.destroy pvm region;
             Core.Cache.destroy pvm cache)))

(* Table 7 path: deferred copy + forced real copies. *)
let test_table7 =
  Test.make ~name:"table7: COW copy + 8 faults"
    (Staged.stage (fun () ->
         let engine = Hw.Engine.create () in
         Hw.Engine.run engine (fun () ->
             let pvm = Core.Pvm.create ~frames:64 ~cost:Hw.Cost.free ~engine () in
             let ctx = Core.Context.create pvm in
             let src = Core.Cache.create pvm () in
             let _r =
               Core.Region.create pvm ctx ~addr:0 ~size:(8 * ps)
                 ~prot:Hw.Prot.read_write src ~offset:0
             in
             for p = 0 to 7 do
               Core.Pvm.touch pvm ctx ~addr:(p * ps) ~access:`Write
             done;
             let dst = Core.Cache.create pvm () in
             Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0 ~dst
               ~dst_off:0 ~size:(8 * ps) ();
             for p = 0 to 7 do
               Core.Pvm.touch pvm ctx ~addr:(p * ps) ~access:`Write
             done;
             Core.Cache.destroy pvm dst)))

(* Table 5 analogue: the cost of the machinery itself — one fault. *)
let test_fault_path =
  Test.make ~name:"table5: single fault resolution"
    (Staged.stage (fun () ->
         let engine = Hw.Engine.create () in
         Hw.Engine.run engine (fun () ->
             let pvm = Core.Pvm.create ~frames:8 ~cost:Hw.Cost.free ~engine () in
             let ctx = Core.Context.create pvm in
             let cache = Core.Cache.create pvm () in
             let _r =
               Core.Region.create pvm ctx ~addr:0 ~size:ps
                 ~prot:Hw.Prot.read_write cache ~offset:0
             in
             Core.Pvm.touch pvm ctx ~addr:0 ~access:`Write)))

let benchmark () =
  let tests = [ test_table6; test_table7; test_fault_path ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw =
    List.map
      (fun test -> Benchmark.all cfg instances test)
      tests
  in
  let ols =
    List.map
      (fun r ->
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                       ~predictors:[| Measure.run |]) Instance.monotonic_clock r)
      raw
  in
  Printf.printf "\nBechamel wall-clock micro-benchmarks (host machine)\n";
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-34s %10.1f ns/run\n" name est
          | _ -> Printf.printf "  %-34s (no estimate)\n" name)
        tbl)
    ols
