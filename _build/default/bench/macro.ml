(* Macro-benchmark: the whole stack under a Unix workload.

   A "make" process forks compiler children that exec `cc`, read their
   whole text, scribble over data and heap, pipe an "object file" back
   to make, and exit.  This exercises fork's history objects, exec's
   rgnMap/rgnInit, segment caching, demand paging, the transit segment
   and the pager in one run — the workload §5.1.5's design targets. *)

open Util

let run ~jobs ~files ~retention =
  in_sim (fun engine ->
      let site =
        Nucleus.Site.create ~frames:4096 ~retention_capacity:retention ~engine
          ()
      in
      let images = Mix.Image.create_store site in
      let _ =
        Mix.Image.add_image images ~name:"make"
          ~text:(Bytes.make (8 * ps) 'M')
          ~data:(Bytes.make (2 * ps) 'm')
          ~bss_size:(8 * ps) ()
      in
      let _ =
        Mix.Image.add_image images ~name:"cc"
          ~text:(Bytes.make (48 * ps) 'C')
          ~data:(Bytes.make (8 * ps) 'c')
          ~bss_size:(8 * ps) ()
      in
      let m = Mix.Process.create_manager site images in
      let pvm = site.Nucleus.Site.pvm in
      let make = Mix.Process.spawn_init m ~image:"make" in
      Mix.Process.write make ~addr:Mix.Process.data_base
        (Bytes.make (2 * ps) 'S');
      Core.Pvm.reset_stats pvm;
      let pipe = Mix.Pipe.create m in
      let elapsed =
        sim_time engine (fun () ->
            let remaining = ref files in
            while !remaining > 0 do
              let batch = min jobs !remaining in
              remaining := !remaining - batch;
              let children =
                List.init batch (fun _ ->
                    let cc = Mix.Process.fork m make in
                    Mix.Process.exec m cc ~image:"cc";
                    cc)
              in
              List.iter
                (fun cc ->
                  (* compile: read the text, fill data/heap, emit an
                     8-page object through the pipe *)
                  ignore
                    (Mix.Process.read cc ~addr:Mix.Process.text_base
                       ~len:(48 * ps));
                  Mix.Process.write cc ~addr:Mix.Process.data_base
                    (Bytes.make (4 * ps) 'o');
                  let heap = Mix.Process.sbrk m cc (8 * ps) in
                  Mix.Process.write cc ~addr:heap (Bytes.make (8 * ps) 'h');
                  Mix.Pipe.write m cc pipe ~addr:heap ~len:(8 * ps);
                  Mix.Process.exit_ m cc ~status:0;
                  ignore (Mix.Process.wait m make))
                children;
              (* make collects the objects into its bss *)
              List.iter
                (fun _ ->
                  ignore
                    (Mix.Pipe.read m make pipe ~addr:Mix.Process.bss_base))
                children
            done)
      in
      let stats = Core.Pvm.stats pvm in
      (elapsed, stats))

let macro () =
  Printf.printf
    "\nMacro: make -j2, 12 compiles (fork + exec + compile + pipe + exit)\n";
  let elapsed, stats = run ~jobs:2 ~files:12 ~retention:64 in
  Printf.printf "  simulated time: %.1f ms\n" (ms_of_ns elapsed);
  Printf.printf
    "  faults: %d   zero-fills: %d   pages really copied: %d   pages moved \
     (IPC): %d\n"
    stats.Core.Types.n_faults stats.n_zero_fills stats.n_cow_copies
    stats.n_moved_pages;
  Printf.printf
    "  pull-ins: %d   history objects created: %d   stub resolves: %d\n"
    stats.n_pull_ins stats.n_history_created stats.n_stub_resolves;
  let forked_pages = 12 * (2 + 16 + 1) in
  Printf.printf
    "  (naive fork would have copied ~%d pages eagerly; deferred copies \
     left %d real copies)\n"
    forked_pages stats.n_cow_copies;
  let cold, _ = run ~jobs:2 ~files:12 ~retention:0 in
  Printf.printf "  without segment caching: %.1f ms (%.2fx slower)\n"
    (ms_of_ns cold)
    (ms_of_ns cold /. ms_of_ns elapsed)
