bench/util.ml: Hw List Printf
