bench/macro.ml: Bytes Core List Mix Nucleus Printf Util
