bench/bechamel_suite.ml: Analyze Bechamel Benchmark Core Hashtbl Hw Instance List Measure Printf Staged Test Time Toolkit
