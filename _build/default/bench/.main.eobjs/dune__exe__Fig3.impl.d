bench/fig3.ml: Bytes Core Format Hw List Printf String Util
