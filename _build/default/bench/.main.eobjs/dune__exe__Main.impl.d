bench/main.ml: Ablations Bechamel_suite Fig3 Macro Printf Sys Tables
