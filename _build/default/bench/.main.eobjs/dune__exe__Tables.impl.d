bench/tables.ml: Array Core Filename Hw List Option Printf Shadow Sys Util
