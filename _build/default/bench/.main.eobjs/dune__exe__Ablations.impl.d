bench/ablations.ml: Array Bytes Core Dsm Hw List Mix Nucleus Printf Shadow Util
