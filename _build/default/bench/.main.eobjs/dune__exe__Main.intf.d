bench/main.mli:
