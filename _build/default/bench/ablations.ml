(* Ablations for the design points DESIGN.md calls out.

   A. §4.2.5 — history trees vs shadow chains under the fork-heavy
      shell pattern: structure counts and lookup depths.
   B. §5.1.3 — segment caching: repeated exec of the same image with
      the retention capacity on and off.
   C. §4.3   — deferred-copy technique crossover: history object vs
      per-virtual-page stubs vs eager copy, by copy size. *)

open Util

(* --- A: chain growth under fork/exit ------------------------------- *)

let ablation_chains () =
  Printf.printf
    "\nAblation A -- fork-modify-exit x N (the shell pattern, §4.2.5)\n";
  Printf.printf
    "%6s  %28s  %28s\n" "forks" "PVM history objects" "Mach shadow chains";
  Printf.printf
    "%6s  %9s %9s %8s  %9s %9s %8s\n" "" "objects" "lookups" "sim-ms"
    "shadows" "collapses" "sim-ms";
  List.iter
    (fun n ->
      (* PVM side *)
      let pvm_objects, pvm_lookups, pvm_ms =
        in_sim (fun engine ->
            let pvm = Core.Pvm.create ~frames:900 ~engine () in
            let ctx = Core.Context.create pvm in
            let src = Core.Cache.create pvm () in
            let _r =
              Core.Region.create pvm ctx ~addr:0 ~size:(16 * ps)
                ~prot:Hw.Prot.read_write src ~offset:0
            in
            for p = 0 to 15 do
              Core.Pvm.touch pvm ctx ~addr:(p * ps) ~access:`Write
            done;
            Core.Pvm.reset_stats pvm;
            let elapsed =
              sim_time engine (fun () ->
                  for _ = 1 to n do
                    (* fork: deferred copy of the parent *)
                    let child = Core.Cache.create pvm () in
                    Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0
                      ~dst:child ~dst_off:0 ~size:(16 * ps) ();
                    (* parent modifies its data *)
                    Core.Pvm.touch pvm ctx ~addr:0 ~access:`Write;
                    Core.Pvm.touch pvm ctx ~addr:ps ~access:`Write;
                    (* child exits *)
                    Core.Cache.destroy pvm child
                  done)
            in
            let stats = Core.Pvm.stats pvm in
            (stats.Core.Types.n_history_created, stats.n_tree_lookups,
             ms_of_ns elapsed))
      in
      (* Shadow side *)
      let shadows, collapses, mach_ms =
        in_sim (fun engine ->
            let vm = Shadow.Shadow_vm.create ~frames:900 ~engine () in
            let sp = Shadow.Shadow_vm.space_create vm in
            let src =
              Shadow.Shadow_vm.allocate vm sp ~addr:0 ~size:(16 * ps)
                ~prot:Hw.Prot.read_write
            in
            for p = 0 to 15 do
              Shadow.Shadow_vm.touch vm sp ~addr:(p * ps) ~access:`Write
            done;
            Shadow.Shadow_vm.reset_stats vm;
            let elapsed =
              sim_time engine (fun () ->
                  for i = 1 to n do
                    let child =
                      Shadow.Shadow_vm.copy_entry vm src ~dst_space:sp
                        ~dst_addr:((64 * i) * ps)
                    in
                    Shadow.Shadow_vm.touch vm sp ~addr:0 ~access:`Write;
                    Shadow.Shadow_vm.touch vm sp ~addr:ps ~access:`Write;
                    Shadow.Shadow_vm.entry_destroy vm child
                  done)
            in
            ignore src;
            let stats = Shadow.Shadow_vm.stats vm in
            (stats.Shadow.Shadow_vm.n_shadows_created, stats.n_collapses,
             ms_of_ns elapsed))
      in
      Printf.printf "%6d  %9d %9d %8.2f  %9d %9d %8.2f\n" n pvm_objects
        pvm_lookups pvm_ms shadows collapses mach_ms)
    [ 1; 4; 16; 64 ];
  Printf.printf
    "  (history objects: no per-fork garbage collection; Mach must \
     collapse chains)\n"

(* --- B: segment caching -------------------------------------------- *)

let exec_workload ~retention =
  in_sim (fun engine ->
      let site =
        Nucleus.Site.create ~frames:1200 ~retention_capacity:retention ~engine
          ()
      in
      let images = Mix.Image.create_store site in
      let _ =
        Mix.Image.add_image images ~name:"cc"
          ~text:(Bytes.make (32 * ps) 'T')
          ~data:(Bytes.make (8 * ps) 'D')
          ()
      in
      let m = Mix.Process.create_manager site images in
      let p = Mix.Process.spawn_init m ~image:"cc" in
      let elapsed =
        sim_time engine (fun () ->
            (* a make-like loop: exec the compiler again and again,
               touching its whole text *)
            for _ = 1 to 10 do
              Mix.Process.exec m p ~image:"cc";
              ignore
                (Mix.Process.read p ~addr:Mix.Process.text_base
                   ~len:(32 * ps))
            done)
      in
      (ms_of_ns elapsed, Mix.Image.mapper_reads images))

let ablation_segcache () =
  Printf.printf
    "\nAblation B -- segment caching on repeated exec (§5.1.3, a 'large \
     make')\n";
  let with_ms, with_reads = exec_workload ~retention:64 in
  let without_ms, without_reads = exec_workload ~retention:0 in
  Printf.printf "  retention on :  %8.2f sim-ms, %4d file-mapper reads\n"
    with_ms with_reads;
  Printf.printf "  retention off:  %8.2f sim-ms, %4d file-mapper reads\n"
    without_ms without_reads;
  Printf.printf "  speedup: %.1fx, reads avoided: %d\n"
    (without_ms /. with_ms)
    (without_reads - with_reads)

(* --- E: DSM sharing patterns --------------------------------------- *)

(* The coherence mapper of §3.3.3 behaves very differently by sharing
   pattern: read-mostly data is cheap (pages replicate), partitioned
   writers never interfere, and write-shared (ping-pong) pages pay a
   protocol round per ownership change. *)
let dsm_run ~pattern =
  in_sim (fun engine ->
      let seg =
        Dsm.Coherent.create ~latency:(Hw.Sim_time.ms 2) ~size:(8 * ps)
          ~page_size:ps ()
      in
      let sites =
        Array.init 2 (fun _ ->
            let pvm = Core.Pvm.create ~frames:64 ~cost:Hw.Cost.free ~engine () in
            let site = Dsm.Coherent.attach seg pvm in
            let ctx = Core.Context.create pvm in
            let _r =
              Core.Region.create pvm ctx ~addr:0 ~size:(8 * ps)
                ~prot:Hw.Prot.read_write (Dsm.Coherent.cache site) ~offset:0
            in
            (pvm, ctx))
      in
      let wr i ~addr =
        let pvm, ctx = sites.(i) in
        Core.Pvm.write pvm ctx ~addr (Bytes.make 32 'w')
      in
      let rd i ~addr =
        let pvm, ctx = sites.(i) in
        ignore (Core.Pvm.read pvm ctx ~addr ~len:32)
      in
      let rounds = 50 in
      let elapsed =
        sim_time engine (fun () ->
            match pattern with
            | `Read_mostly ->
              wr 0 ~addr:0;
              for _ = 1 to rounds do
                rd 0 ~addr:0;
                rd 1 ~addr:0
              done
            | `Partitioned ->
              for _ = 1 to rounds do
                wr 0 ~addr:0;
                wr 1 ~addr:(4 * ps)
              done
            | `Ping_pong ->
              for i = 1 to rounds do
                wr (i mod 2) ~addr:0
              done)
      in
      let stats = Dsm.Coherent.stats seg in
      (ms_of_ns elapsed, stats.Dsm.Coherent.page_transfers,
       stats.invalidations))

let ablation_dsm () =
  Printf.printf
    "\nAblation E -- DSM sharing patterns (2 sites, 2 ms links, 50 rounds)\n";
  Printf.printf "%14s  %10s  %10s  %13s\n" "pattern" "sim-ms" "transfers"
    "invalidations";
  List.iter
    (fun (label, pattern) ->
      let t, transfers, invalidations = dsm_run ~pattern in
      Printf.printf "%14s  %10.1f  %10d  %13d\n" label t transfers
        invalidations)
    [
      ("read-mostly", `Read_mostly);
      ("partitioned", `Partitioned);
      ("ping-pong", `Ping_pong);
    ];
  Printf.printf
    "  (replicated readers are free after the first transfer; write \
     sharing pays a protocol round per ownership change)\n"

(* --- D: IPC transport ---------------------------------------------- *)

(* §5.1.6: an IPC send is a cache.copy into a transit slot (per-page
   deferred when alignment allows, bcopy otherwise); a receive is a
   cache.move (frame reassignment).  Compare the aligned fast path
   against byte-misaligned payloads of the same size. *)
let ipc_round ~aligned ~len =
  in_sim (fun engine ->
      let site = Nucleus.Site.create ~frames:256 ~engine () in
      let transit = Nucleus.Transit.create site ~slots:4 () in
      let sender = Nucleus.Actor.create site in
      let receiver = Nucleus.Actor.create site in
      let _ =
        Nucleus.Actor.rgn_allocate sender ~addr:0 ~size:(16 * ps)
          ~prot:Hw.Prot.read_write
      in
      let _ =
        Nucleus.Actor.rgn_allocate receiver ~addr:0 ~size:(16 * ps)
          ~prot:Hw.Prot.read_write
      in
      let endpoint = Nucleus.Ipc.make_endpoint () in
      let addr = if aligned then 0 else 13 in
      Nucleus.Actor.write sender ~addr (Bytes.make len 'i');
      let samples =
        List.init 10 (fun _ ->
            float_of_int
              (sim_time engine (fun () ->
                   Nucleus.Ipc.send sender transit ~dst:endpoint ~addr ~len;
                   ignore
                     (Nucleus.Ipc.receive receiver transit endpoint
                        ~addr:(if aligned then 0 else 13)))))
      in
      ms_of_ns (int_of_float (mean samples)))

let ablation_ipc () =
  Printf.printf
    "\nAblation D -- IPC through the transit segment (§5.1.6): send + \
     receive round\n";
  Printf.printf "%10s  %14s  %14s   (sim-ms)\n" "size" "page-aligned"
    "misaligned";
  List.iter
    (fun pages ->
      let len = pages * ps in
      let fast = ipc_round ~aligned:true ~len in
      let slow = ipc_round ~aligned:false ~len in
      Printf.printf "%7d KB  %14.2f  %14.2f\n" (len / 1024) fast slow)
    [ 1; 2; 4; 8 ];
  Printf.printf
    "  (aligned messages defer the send per page and move frames on \
     receive; misaligned ones are bcopy'd)\n"

(* --- C: copy-technique crossover ----------------------------------- *)

let copy_once ~strategy ~pages ~touched =
  in_sim (fun engine ->
      let pvm = Core.Pvm.create ~frames:900 ~engine () in
      let ctx = Core.Context.create pvm in
      let src = Core.Cache.create pvm () in
      let _r =
        Core.Region.create pvm ctx ~addr:0 ~size:(pages * ps)
          ~prot:Hw.Prot.read_write src ~offset:0
      in
      for p = 0 to pages - 1 do
        Core.Pvm.touch pvm ctx ~addr:(p * ps) ~access:`Write
      done;
      let samples =
        List.init 10 (fun _ ->
            float_of_int
              (sim_time engine (fun () ->
                   let dst = Core.Cache.create pvm () in
                   Core.Cache.copy pvm ~strategy ~src ~src_off:0 ~dst
                     ~dst_off:0 ~size:(pages * ps) ();
                   let r =
                     Core.Region.create pvm ctx ~addr:0x4000_0000
                       ~size:(pages * ps) ~prot:Hw.Prot.read_write dst
                       ~offset:0
                   in
                   (* the destination touches a fraction of the copy *)
                   for p = 0 to touched - 1 do
                     Core.Pvm.touch pvm ctx
                       ~addr:(0x4000_0000 + (p * ps))
                       ~access:`Write
                   done;
                   Core.Region.destroy pvm r;
                   Core.Cache.destroy pvm dst)))
      in
      ms_of_ns (int_of_float (mean samples)))

let ablation_pervpage () =
  Printf.printf
    "\nAblation C -- deferred-copy technique crossover (§4.3): copy N \
     pages, write 25%% of the copy\n";
  Printf.printf "%8s  %10s  %10s  %10s   (sim-ms)\n" "pages" "history"
    "per-page" "eager";
  List.iter
    (fun pages ->
      let touched = max 1 (pages / 4) in
      let history = copy_once ~strategy:`History ~pages ~touched in
      let per_page = copy_once ~strategy:`Per_page ~pages ~touched in
      let eager = copy_once ~strategy:`Eager ~pages ~touched in
      Printf.printf "%8d  %10.2f  %10.2f  %10.2f\n" pages history per_page
        eager)
    [ 1; 2; 4; 8; 16; 32; 64; 128 ];
  Printf.printf
    "  (paper: history objects for large data, per-virtual-page for small \
     IPC-sized copies)\n"
