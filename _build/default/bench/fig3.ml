(* Figure 3: history-object scenarios, rendered as trees.

   Replays the four sub-figures of the paper (§4.2, Figure 3) and
   prints the resulting history trees; page numbers with [*] are
   hardware read-protected frames (grey in the paper's figure). *)

open Util

let run () =
  in_sim (fun engine ->
      let pvm = Core.Pvm.create ~frames:512 ~cost:Hw.Cost.free ~engine () in
      let ctx = Core.Context.create pvm in
      let mk_mapped base =
        let cache = Core.Cache.create pvm () in
        let _r =
          Core.Region.create pvm ctx ~addr:base ~size:(5 * ps)
            ~prot:Hw.Prot.read_write cache ~offset:0
        in
        cache
      in
      let wr base page c =
        Core.Pvm.write pvm ctx ~addr:(base + (page * ps)) (Bytes.make ps c)
      in
      let copy src dst =
        Core.Cache.copy pvm ~strategy:`History ~src ~src_off:0 ~dst ~dst_off:0
          ~size:(5 * ps) ()
      in
      let show label cache =
        Printf.printf "%s\n%s\n" label
          (Format.asprintf "%a" Core.Pvm.pp_history_tree cache)
      in

      Printf.printf "\nFigure 3 -- history objects for copy-on-write\n";
      Printf.printf "(pages by index; * = read-protected frame)\n\n";

      (* 3.a: cpy1 is a COW of src; page 2 updated in src, page 3 in
         cpy1 *)
      let src = mk_mapped 0 and cpy1 = mk_mapped (1024 * ps) in
      List.iter (fun (p, c) -> wr 0 p c) [ (1, '1'); (2, '2'); (3, '3') ];
      copy src cpy1;
      wr 0 2 'X';
      wr (1024 * ps) 3 'Y';
      show "3.a  src copied once; src wrote page 2, cpy1 wrote page 3:" src;

      (* 3.b: then cpy1 is copied to copyOfCpy1 and writes page 3 *)
      let cpy1_of = mk_mapped (2048 * ps) in
      copy cpy1 cpy1_of;
      wr (1024 * ps) 3 'Z';
      show "3.b  cpy1 copied to copyOfCpy1; cpy1 wrote page 3 again:" src;

      (* 3.c: a second copy of src inserts a working history object *)
      let cpy2 = mk_mapped (3072 * ps) in
      copy src cpy2;
      wr 0 3 'S';
      show "3.c  second copy of src: working object w inserted:" src;

      (* 3.d: a third copy inserts another working object *)
      let cpy3 = mk_mapped (4096 * ps) in
      copy src cpy3;
      wr 0 1 'T';
      show "3.d  third copy of src: second working object:" src;

      match Core.Pvm.check_invariant pvm with
      | [] -> Printf.printf "history-tree invariants: OK\n"
      | errs ->
        Printf.printf "history-tree invariants: BROKEN: %s\n"
          (String.concat "; " errs))
