(* Scratch probe: where does the parallel engine's wall-clock go?
   Compares a pure-engine workload (sleep-only fibres — isolates the
   charge path) against the storm PVM workload, sequential vs pool. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let sleep_only ~domains ~fibres ~charges =
  let engine =
    Hw.Engine.create ?domains:(if domains = 0 then None else Some domains) ()
  in
  Hw.Engine.run engine (fun () ->
      for w = 1 to fibres do
        Hw.Engine.spawn engine ~affinity:(if domains = 0 then 0 else w)
          (fun () ->
            for _ = 1 to charges do
              Hw.Engine.sleep 3
            done)
      done)

let storm ~domains =
  let scen = Check.Crossval.storm ~workers:16 ~pages:256 ~rounds:2 () in
  let engine =
    Hw.Engine.create ?domains:(if domains = 0 then None else Some domains) ()
  in
  ignore (Hw.Engine.run_fn engine (fun () -> scen.Check.Crossval.run engine))

let () =
  List.iter
    (fun d ->
      let (), t = time (fun () -> sleep_only ~domains:d ~fibres:16 ~charges:100_000) in
      Printf.printf "sleep-only domains=%d: %.1f ms\n%!" d (t *. 1e3))
    [ 0; 1; 2; 4 ];
  List.iter
    (fun d ->
      let (), t = time (fun () -> storm ~domains:d) in
      Printf.printf "storm      domains=%d: %.1f ms\n%!" d (t *. 1e3))
    [ 0; 1; 2; 4 ]
