(* Replay a failing property sequence with per-step state dumps. *)

let ps = 8192
let n_caches = 4
let n_pages = 4

type op = W of int * int * char | C of int * int * [ `H | `P | `E ] | M of int * int

let parse_ops s =
  s |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun t -> t <> "")
  |> List.map (fun tok ->
         try Scanf.sscanf tok "W(%d,%d,%c)" (fun a b c -> W (a, b, c))
         with Scanf.Scan_failure _ | End_of_file -> (
           try Scanf.sscanf tok "C_hist(%d->%d)" (fun a b -> C (a, b, `H))
           with Scanf.Scan_failure _ | End_of_file -> (
             try Scanf.sscanf tok "C_page(%d->%d)" (fun a b -> C (a, b, `P))
             with Scanf.Scan_failure _ | End_of_file -> (
               try Scanf.sscanf tok "C_eager(%d->%d)" (fun a b -> C (a, b, `E))
               with Scanf.Scan_failure _ | End_of_file ->
                 Scanf.sscanf tok "M(%d->%d)" (fun a b -> M (a, b))))))

let ops = parse_ops Sys.argv.(1)

let pp_op = function
  | W (c, p, ch) -> Printf.sprintf "W(%d,%d,%c)" c p ch
  | C (s, d, `H) -> Printf.sprintf "C_hist(%d->%d)" s d
  | C (s, d, `P) -> Printf.sprintf "C_page(%d->%d)" s d
  | C (s, d, `E) -> Printf.sprintf "C_eager(%d->%d)" s d
  | M (s, d) -> Printf.sprintf "M(%d->%d)" s d

let () =
  let engine = Hw.Engine.create () in
  Hw.Engine.run engine (fun () ->
      let frames = try int_of_string (Sys.getenv "FRAMES") with Not_found -> 6 in
      let pvm = Core.Pvm.create ~frames ~cost:Hw.Cost.free ~engine () in
      Core.Pvm.set_segment_create_hook pvm (fun cache ->
          let cid = cache.Core.Types.c_id in
          let store = Hashtbl.create 16 in
          Some
            {
              Core.Gmi.b_name = "dbg-swap";
              b_pull_in =
                (fun ~offset ~size ~prot:_ ~fill_up ->
                  let data =
                    match Hashtbl.find_opt store offset with
                    | Some bytes -> Bytes.copy bytes
                    | None -> Bytes.make size '\000'
                  in
                  let c = Bytes.get data 17 in
                  Printf.printf "      [swap] pull cache_id=%d page=%d ch=%c\n"
                    cid (offset / ps)
                    (if c = '\000' then '.' else c);
                  fill_up ~offset data);
              b_get_write_access = (fun ~offset:_ ~size:_ -> ());
              b_push_out =
                (fun ~offset ~size ~copy_back ->
                  let data = copy_back ~offset ~size in
                  let c = Bytes.get data 17 in
                  Printf.printf "      [swap] push cache_id=%d page=%d ch=%c\n"
                    cid (offset / ps)
                    (if c = '\000' then '.' else c);
                  Hashtbl.replace store offset data);
            });
      let ctx = Core.Context.create pvm in
      let caches = Array.init n_caches (fun _ -> Core.Cache.create pvm ()) in
      Array.iteri
        (fun i cache ->
          ignore
            (Core.Region.create pvm ctx ~addr:(i * 1024 * ps)
               ~size:(n_pages * ps) ~prot:Hw.Prot.read_write cache ~offset:0))
        caches;
      let model =
        Array.init n_caches (fun _ -> Bytes.make (n_pages * ps) '\000')
      in
      let valid = Array.init n_caches (fun _ -> Array.make n_pages true) in
      let dump_internals () =
        let all =
          List.rev
            (List.map (fun c -> (-1, c))
               (List.filter
                  (fun (c : Core.Types.cache) ->
                    not (Array.exists (fun u -> u == c) caches))
                  (let open Core.Types in
                   pvm.caches)))
          @ Array.to_list (Array.mapi (fun i c -> (i, c)) caches)
        in
        List.iter
          (fun (i, cache) ->
            let open Core.Types in
            let stubs =
              Core.Shard_map.fold
                (fun (cid, o) e acc ->
                  if cid = cache.c_id then
                    match e with
                    | Cow_stub s ->
                      Printf.sprintf "s%d->%s" (o / ps)
                        (match s.cs_source with
                        | Src_page p -> Printf.sprintf "pg(%d,%d)" p.p_cache.c_id (p.p_offset / ps)
                        | Src_cache (c, so) -> Printf.sprintf "(%d,%d)" c.c_id (so / ps))
                      :: acc
                    | Sync_stub _ -> Printf.sprintf "sync%d" (o / ps) :: acc
                    | Resident _ -> acc
                  else acc)
                pvm.gmap []
            in

            Printf.printf
              "    cache%d(id=%d)%s hist=%s parents=[%s] pages=[%s] stubs=[%s] swapped=[%s]\n"
              i cache.c_id
              (if cache.c_is_history then "[hist-obj]" else "")
              (match cache.c_history with
              | Some h -> string_of_int h.c_id
              | None -> "-")
              (String.concat ","
                 (List.map
                    (fun f ->
                      Printf.sprintf "%d..+%d->%d@%d" (f.f_off / ps)
                        (f.f_size / ps) f.f_parent.c_id (f.f_parent_off / ps))
                    cache.c_parents))
              (String.concat ","
                 (List.map
                    (fun p ->
                      Printf.sprintf "p%d[f%d]%s%s%s" (p.p_offset / ps)
                        p.p_frame.Hw.Phys_mem.index
                        (if p.p_cow_protected then "*" else "")
                        (if p.p_cow_stubs <> [] then
                           Printf.sprintf "{%d stubs}" (List.length p.p_cow_stubs)
                         else "")
                        (Printf.sprintf "(ch=%c)"
                           (let c = Bytes.get p.p_frame.Hw.Phys_mem.bytes 17 in
                            if c = '\000' then '.' else c)))
                    (List.sort (fun a b -> compare a.p_offset b.p_offset)
                       cache.c_pages)))
              (String.concat "," stubs)
              (String.concat ","
                 (Hashtbl.fold
                    (fun o () acc -> string_of_int (o / ps) :: acc)
                    cache.c_backed_offs [])
              ^ "|pending:"
              ^ String.concat ","
                  (Core.Shard_map.fold
                     (fun (cid, o) stubs acc ->
                       if cid = cache.c_id then
                         Printf.sprintf "%d(%d stubs,%d live)" (o / ps)
                           (List.length stubs)
                           (List.length (List.filter (fun s -> s.cs_alive) stubs))
                         :: acc
                       else acc)
                     pvm.stub_sources [])))
          all
      in
      let dump_mmu () =
        (* region windows are at i*1024*ps, n_pages pages each *)
        List.iter
          (fun (r : Core.Types.region) ->
            let open Core.Types in
            let entries =
              List.concat
                (List.init n_pages (fun p ->
                     let vpn = (r.r_addr / ps) + p in
                     match Hw.Mmu.query r.r_context.ctx_space ~vpn with
                     | Some (frame, prot) ->
                       [ Printf.sprintf "v%d->f%d(%s)" p
                           frame.Hw.Phys_mem.index (Hw.Prot.to_string prot) ]
                     | None -> []))
            in
            Printf.printf "    region@%x: %s\n" r.r_addr
              (String.concat " " entries))
          (Core.Context.region_list ctx)
      in
      let dump tag =
        Printf.printf "-- %s\n" tag;
        dump_internals ();
        dump_mmu ();
        for i = 0 to n_caches - 1 do
          let actual =
            Core.Pvm.read pvm ctx ~addr:(i * 1024 * ps) ~len:(n_pages * ps)
          in
          let per_page b =
            String.concat ""
              (List.init n_pages (fun p ->
                   let c = Bytes.get b ((p * ps) + 17) in
                   if c = '\000' then "." else String.make 1 c))
          in
          let a = per_page actual and m = per_page model.(i) in
          let mask =
            String.concat ""
              (List.init n_pages (fun p -> if valid.(i).(p) then "v" else "?"))
          in
          let mismatch =
            List.exists
              (fun p -> valid.(i).(p) && a.[p] <> m.[p])
              (List.init n_pages Fun.id)
          in
          Printf.printf "  cache%d actual=%s model=%s mask=%s%s\n" i a m mask
            (if mismatch then "   <-- MISMATCH" else "")
        done;
        dump_mmu ()
      in
      ignore dump;
      List.iter
        (fun op ->
          (match op with
          | W (c, p, ch) ->
            let data = Bytes.make 64 ch in
            Bytes.blit data 0 model.(c) ((p * ps) + 17) 64;
            Core.Pvm.write pvm ctx ~addr:((c * 1024 * ps) + (p * ps) + 17) data
          | C (s, d, strategy) ->
            Bytes.blit model.(s) 0 model.(d) 0 (n_pages * ps);
            Array.blit valid.(s) 0 valid.(d) 0 n_pages;
            let strategy =
              match strategy with `H -> `History | `P -> `Per_page | `E -> `Eager
            in
            Core.Cache.copy pvm ~strategy ~src:caches.(s) ~src_off:0
              ~dst:caches.(d) ~dst_off:0 ~size:(n_pages * ps) ()
          | M (s, d) ->
            Bytes.blit model.(s) 0 model.(d) 0 (n_pages * ps);
            Array.blit valid.(s) 0 valid.(d) 0 n_pages;
            Array.fill valid.(s) 0 n_pages false;
            Core.Cache.move pvm ~src:caches.(s) ~src_off:0 ~dst:caches.(d)
              ~dst_off:0 ~size:(n_pages * ps) ());
          Printf.printf "-- %s\n" (pp_op op);
          dump_internals ();
          match Core.Pvm.check_invariant pvm with
          | [] -> ()
          | errs -> Printf.printf "  INVARIANT: %s\n" (String.concat "; " errs))
        ops;
      dump "FINAL";
      (* teardown: everything must come back *)
      Core.Context.destroy pvm ctx;
      Array.iter (fun cache -> Core.Cache.destroy pvm cache) caches;
      Printf.printf "-- AFTER TEARDOWN: %d frames in use\n"
        (Hw.Phys_mem.used_frames (Core.Pvm.memory pvm));
      dump_internals ())
